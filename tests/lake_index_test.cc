#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "search/lake_index.h"
#include "util/thread_pool.h"

namespace tsfm::search {
namespace {

LakeIndex MakeToyIndex() {
  LakeIndex index(3);
  index.AddTable("sales_q1", {{1, 0, 0}, {0, 1, 0}});
  index.AddTable("sales_q2", {{0.9f, 0.1f, 0}, {0, 0.9f, 0.1f}});
  index.AddTable("weather", {{0, 0, 1}});
  return index;
}

TEST(LakeIndexTest, JoinQueryRanksByNearestColumn) {
  LakeIndex index = MakeToyIndex();
  auto ranked = index.QueryJoinable({1, 0, 0}, 3);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], "sales_q1");
  EXPECT_EQ(ranked[1], "sales_q2");
}

TEST(LakeIndexTest, UnionQueryUsesAllColumns) {
  LakeIndex index = MakeToyIndex();
  auto ranked = index.QueryUnionable({{1, 0, 0}, {0, 1, 0}}, 3);
  ASSERT_GE(ranked.size(), 2u);
  // sales_q1 matches both query columns exactly.
  EXPECT_EQ(ranked[0], "sales_q1");
}

TEST(LakeIndexTest, RespectsK) {
  LakeIndex index = MakeToyIndex();
  EXPECT_LE(index.QueryJoinable({1, 0, 0}, 1).size(), 1u);
}

TEST(LakeIndexTest, SaveLoadRoundTrip) {
  LakeIndex index = MakeToyIndex();
  std::string path = testing::TempDir() + "/tsfm_lake_index.bin";
  ASSERT_TRUE(index.Save(path).ok());

  auto loaded = LakeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_tables(), 3u);
  EXPECT_EQ(loaded.value().dim(), 3u);
  auto ranked = loaded.value().QueryJoinable({1, 0, 0}, 3);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0], "sales_q1");
  std::remove(path.c_str());
}

TEST(LakeIndexTest, SaveLoadRoundTripBothBackends) {
  for (auto backend : {search::IndexBackend::kFlat, search::IndexBackend::kHnsw}) {
    IndexOptions options;
    options.backend = backend;
    options.hnsw.ef_search = 96;
    LakeIndex index(3, options);
    index.AddTable("sales_q1", {{1, 0, 0}, {0, 1, 0}});
    index.AddTable("sales_q2", {{0.9f, 0.1f, 0}, {0, 0.9f, 0.1f}});
    index.AddTable("weather", {{0, 0, 1}});

    std::string path = testing::TempDir() + "/tsfm_lake_backend.bin";
    ASSERT_TRUE(index.Save(path).ok());
    auto loaded = LakeIndex::Load(path);
    ASSERT_TRUE(loaded.ok());
    // The backend choice survives the file format round trip.
    EXPECT_EQ(loaded.value().options().backend, backend);
    EXPECT_EQ(loaded.value().options().hnsw.ef_search, 96u);
    EXPECT_EQ(loaded.value().num_tables(), 3u);
    auto ranked = loaded.value().QueryJoinable({1, 0, 0}, 3);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked[0], "sales_q1");
    std::remove(path.c_str());
  }
}

TEST(LakeIndexTest, Sq8SaveLoadRoundTrip) {
  IndexOptions options;
  options.storage = Storage::kSq8;
  LakeIndex index(3, options);
  index.AddTable("sales_q1", {{1, 0, 0}, {0, 1, 0}});
  index.AddTable("sales_q2", {{0.9f, 0.1f, 0}, {0, 0.9f, 0.1f}});
  index.AddTable("weather", {{0, 0, 1}});

  std::string path = testing::TempDir() + "/tsfm_lake_sq8.bin";
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = LakeIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().options().storage, Storage::kSq8);
  EXPECT_EQ(loaded.value().num_tables(), 3u);
  // The restored index (persisted codec + replayed rows) must rank exactly
  // like the one that wrote the file.
  for (const std::vector<float> q :
       {std::vector<float>{1, 0, 0}, {0, 1, 0}, {0.5f, 0.5f, 0}}) {
    EXPECT_EQ(loaded.value().QueryJoinable(q, 3), index.QueryJoinable(q, 3));
  }
  std::remove(path.c_str());
}

TEST(LakeIndexTest, Sq8RoundTripFaithfulAfterPostTrainingAdds) {
  // Adds after the first query encode through the already-trained codec;
  // the file persists that codec, so the restored index must reproduce the
  // writer's results even though re-training over all rows would have
  // produced a different calibration.
  IndexOptions options;
  options.storage = Storage::kSq8;
  LakeIndex index(3, options);
  index.AddTable("sales_q1", {{1, 0, 0}, {0, 1, 0}});
  (void)index.QueryJoinable({1, 0, 0}, 1);  // trains the codec
  index.AddTable("outlier", {{9, -9, 9}});  // outside the calibrated range

  std::string path = testing::TempDir() + "/tsfm_lake_sq8_posttrain.bin";
  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = LakeIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const std::vector<float> q :
       {std::vector<float>{1, 0, 0}, {9, -9, 9}}) {
    EXPECT_EQ(loaded.value().QueryJoinable(q, 3), index.QueryJoinable(q, 3));
  }
  std::remove(path.c_str());
}

TEST(LakeIndexTest, FloatFilesStayOnVersionTwo) {
  // A float32 index must keep writing the exact version-2 header so
  // pre-sq8 readers keep loading it; only sq8 files get the new version.
  LakeIndex index = MakeToyIndex();
  std::string path = testing::TempDir() + "/tsfm_lake_v2check.bin";
  ASSERT_TRUE(index.Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  EXPECT_EQ(magic, 0x4c414b32u);  // "LAK2"
  EXPECT_EQ(version, 2u);
  auto loaded = LakeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().options().storage, Storage::kFloat32);
  std::remove(path.c_str());
}

TEST(LakeIndexTest, LoadsLegacyHeaderlessFormat) {
  // Files written before the versioned header: magic "LAKE", then dim and
  // the table records, with no backend metadata. They must load as flat.
  std::string path = testing::TempDir() + "/tsfm_lake_legacy.bin";
  {
    std::ofstream out(path, std::ios::binary);
    uint32_t magic = 0x4c414b45;  // "LAKE"
    uint64_t dim = 2, num_tables = 2;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(&num_tables), sizeof(num_tables));
    const std::vector<std::pair<std::string, std::vector<float>>> tables = {
        {"alpha", {1, 0}}, {"beta", {0, 1}}};
    for (const auto& [id, col] : tables) {
      uint64_t id_len = id.size(), num_cols = 1;
      out.write(reinterpret_cast<const char*>(&id_len), sizeof(id_len));
      out.write(id.data(), static_cast<std::streamsize>(id_len));
      out.write(reinterpret_cast<const char*>(&num_cols), sizeof(num_cols));
      out.write(reinterpret_cast<const char*>(col.data()),
                static_cast<std::streamsize>(col.size() * sizeof(float)));
    }
  }
  auto loaded = LakeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().options().backend, search::IndexBackend::kFlat);
  EXPECT_EQ(loaded.value().num_tables(), 2u);
  auto ranked = loaded.value().QueryJoinable({1, 0}, 2);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0], "alpha");
  std::remove(path.c_str());
}

TEST(LakeIndexTest, BatchQueriesMatchSerial) {
  LakeIndex index = MakeToyIndex();
  std::vector<std::vector<float>> join_queries = {
      {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::vector<std::vector<float>>> union_queries = {
      {{1, 0, 0}, {0, 1, 0}}, {{0, 0, 1}}};
  ThreadPool pool(2);
  auto join_batch = index.QueryJoinableBatch(join_queries, 3, &pool);
  ASSERT_EQ(join_batch.size(), join_queries.size());
  for (size_t q = 0; q < join_queries.size(); ++q) {
    EXPECT_EQ(join_batch[q], index.QueryJoinable(join_queries[q], 3));
  }
  auto union_batch = index.QueryUnionableBatch(union_queries, 3, &pool);
  ASSERT_EQ(union_batch.size(), union_queries.size());
  for (size_t q = 0; q < union_queries.size(); ++q) {
    EXPECT_EQ(union_batch[q], index.QueryUnionable(union_queries[q], 3));
  }
}

TEST(LakeIndexTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/tsfm_lake_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage bytes here";
  }
  EXPECT_FALSE(LakeIndex::Load(path).ok());
  std::remove(path.c_str());
}

TEST(LakeIndexTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LakeIndex::Load("/nonexistent/lake.bin").ok());
}

TEST(LakeIndexTest, EmptyIndexQueriesAreEmpty) {
  LakeIndex index(4);
  EXPECT_TRUE(index.QueryJoinable({1, 0, 0, 0}, 5).empty());
  EXPECT_TRUE(index.QueryUnionable({{1, 0, 0, 0}}, 5).empty());
}

}  // namespace
}  // namespace tsfm::search
