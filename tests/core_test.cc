#include <gtest/gtest.h>

#include "core/cross_encoder.h"
#include "core/embedder.h"
#include "core/finetuner.h"
#include "core/input_encoder.h"
#include "core/mlm.h"
#include "core/model.h"
#include "core/pretrainer.h"
#include "lakebench/corpus.h"
#include "lakebench/finetune_benchmarks.h"

namespace tsfm::core {
namespace {

TabSketchFMConfig TinyConfig(size_t vocab_size) {
  TabSketchFMConfig config;
  config.encoder.hidden = 16;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 32;
  config.encoder.dropout = 0.0f;
  config.vocab_size = vocab_size;
  config.max_seq_len = 48;
  config.num_perm = 8;
  return config;
}

Table MakeToyTable() {
  Table t("toy", "residential properties");
  t.AddColumn("street", {"main st", "oak ave", "elm rd"});
  t.AddColumn("age", {"10", "25", "40"});
  t.AddColumn("price", {"100.5", "250.25", "399.9"});
  t.InferTypes();
  return t;
}

text::Vocab MakeToyVocab() {
  return text::Vocab::Build({"residential", "properties", "street", "age", "price",
                             "table", "second", "about", "values"});
}

// ----------------------------------------------------------- InputEncoder

TEST(InputEncoderTest, SingleTableLayout) {
  TabSketchFMConfig config = TinyConfig(100);
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);

  SketchOptions opt;
  opt.num_perm = config.num_perm;
  TableSketch sketch = BuildTableSketch(MakeToyTable(), opt);
  EncodedTable enc = encoder.EncodeTable(sketch);

  ASSERT_GT(enc.size(), 0u);
  EXPECT_EQ(enc.token_ids[0], text::kClsId);
  EXPECT_EQ(enc.column_pos[0], 0);
  // All parallel tracks have the same length.
  EXPECT_EQ(enc.token_pos.size(), enc.size());
  EXPECT_EQ(enc.column_pos.size(), enc.size());
  EXPECT_EQ(enc.column_type.size(), enc.size());
  EXPECT_EQ(enc.segment.size(), enc.size());
  EXPECT_EQ(enc.minhash.size(), enc.size());
  EXPECT_EQ(enc.numerical.size(), enc.size());
  // One span per column.
  ASSERT_EQ(enc.column_spans.size(), 1u);
  EXPECT_EQ(enc.column_spans[0].size(), 3u);
  // Column types recorded: street=string(1), age=int(2), price=float(3).
  auto [s0, l0] = enc.column_spans[0][0];
  EXPECT_EQ(enc.column_type[s0], 1);
  auto [s1, l1] = enc.column_spans[0][1];
  EXPECT_EQ(enc.column_type[s1], 2);
  auto [s2, l2] = enc.column_spans[0][2];
  EXPECT_EQ(enc.column_type[s2], 3);
  // Segment all zero for single table.
  for (int s : enc.segment) EXPECT_EQ(s, 0);
}

TEST(InputEncoderTest, DescriptionTokensCarrySnapshot) {
  TabSketchFMConfig config = TinyConfig(100);
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);
  SketchOptions opt;
  opt.num_perm = config.num_perm;
  TableSketch sketch = BuildTableSketch(MakeToyTable(), opt);
  EncodedTable enc = encoder.EncodeTable(sketch);

  // CLS (column_pos 0) minhash track = duplicated snapshot.
  auto snapshot = sketch.content_snapshot.ToFloats();
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_FLOAT_EQ(enc.minhash[0][i], snapshot[i]);
    EXPECT_FLOAT_EQ(enc.minhash[0][snapshot.size() + i], snapshot[i]);
  }
  // Description numerical track is all zero.
  for (float v : enc.numerical[0]) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(InputEncoderTest, PairEncodingSegments) {
  TabSketchFMConfig config = TinyConfig(100);
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);
  SketchOptions opt;
  opt.num_perm = config.num_perm;
  TableSketch a = BuildTableSketch(MakeToyTable(), opt);
  Table t2("toy2", "second table about values");
  t2.AddColumn("value", {"1", "2"});
  t2.InferTypes();
  TableSketch b = BuildTableSketch(t2, opt);

  EncodedTable enc = encoder.EncodePair(a, b);
  ASSERT_EQ(enc.column_spans.size(), 2u);
  EXPECT_LE(enc.size(), config.max_seq_len);
  // Exactly one CLS, at position 0.
  size_t cls_count = 0;
  for (int id : enc.token_ids) {
    if (id == text::kClsId) ++cls_count;
  }
  EXPECT_EQ(cls_count, 1u);
  // Both segments present.
  bool has0 = false, has1 = false;
  for (int s : enc.segment) {
    has0 |= s == 0;
    has1 |= s == 1;
  }
  EXPECT_TRUE(has0);
  EXPECT_TRUE(has1);
}

TEST(InputEncoderTest, TruncatesWideTables) {
  TabSketchFMConfig config = TinyConfig(100);
  config.max_seq_len = 16;
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);

  Table wide("wide", "many columns");
  for (int c = 0; c < 30; ++c) {
    wide.AddColumn("col" + std::to_string(c), {"1", "2"});
  }
  wide.InferTypes();
  SketchOptions opt;
  opt.num_perm = config.num_perm;
  EncodedTable enc = encoder.EncodeTable(BuildTableSketch(wide, opt));
  EXPECT_LE(enc.size(), 16u);
}

TEST(InputEncoderTest, AblationZeroesTracks) {
  TabSketchFMConfig config = TinyConfig(100);
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);
  SketchOptions opt;
  opt.num_perm = config.num_perm;
  EncodedTable enc = encoder.EncodeTable(BuildTableSketch(MakeToyTable(), opt));

  EncodedTable no_minhash = enc;
  SketchAblation ab1;
  ab1.use_minhash = false;
  ApplyAblation(ab1, &no_minhash);
  // Column tokens zeroed, snapshot (column_pos 0) kept.
  for (size_t i = 0; i < no_minhash.size(); ++i) {
    if (no_minhash.column_pos[i] > 0) {
      for (float v : no_minhash.minhash[i]) EXPECT_FLOAT_EQ(v, 0.0f);
    }
  }
  bool snapshot_nonzero = false;
  for (float v : no_minhash.minhash[0]) snapshot_nonzero |= v != 0.0f;
  EXPECT_TRUE(snapshot_nonzero);

  EncodedTable no_numerical = enc;
  SketchAblation ab2;
  ab2.use_numerical = false;
  ApplyAblation(ab2, &no_numerical);
  for (size_t i = 0; i < no_numerical.size(); ++i) {
    for (float v : no_numerical.numerical[i]) EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

// -------------------------------------------------------------------- MLM

TEST(MlmTest, WholeColumnMasking) {
  TabSketchFMConfig config = TinyConfig(100);
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);
  SketchOptions opt;
  opt.num_perm = config.num_perm;
  EncodedTable enc = encoder.EncodeTable(BuildTableSketch(MakeToyTable(), opt));

  MlmSampler sampler(&config);
  Rng rng(1);
  MlmExample ex = sampler.MaskColumn(enc, 1, &rng);
  auto [start, len] = enc.column_spans[0][1];
  ASSERT_GT(len, 0u);
  for (size_t i = start; i < start + len; ++i) {
    EXPECT_EQ(ex.input.token_ids[i], text::kMaskId);
    EXPECT_EQ(ex.targets[i], enc.token_ids[i]);
  }
  // Other columns untouched.
  auto [s2, l2] = enc.column_spans[0][2];
  for (size_t i = s2; i < s2 + l2; ++i) {
    EXPECT_EQ(ex.input.token_ids[i], enc.token_ids[i]);
  }
}

TEST(MlmTest, SmallTableMasksEveryColumn) {
  TabSketchFMConfig config = TinyConfig(100);
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);
  SketchOptions opt;
  opt.num_perm = config.num_perm;
  EncodedTable enc = encoder.EncodeTable(BuildTableSketch(MakeToyTable(), opt));
  MlmSampler sampler(&config);
  Rng rng(2);
  auto examples = sampler.Sample(enc, &rng);
  EXPECT_EQ(examples.size(), 3u);  // 3 columns <= max 5
}

TEST(MlmTest, LargeTableCapsExamples) {
  TabSketchFMConfig config = TinyConfig(100);
  config.max_seq_len = 96;
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);
  Table wide("wide", "many");
  for (int c = 0; c < 12; ++c) wide.AddColumn("c" + std::to_string(c), {"1"});
  wide.InferTypes();
  SketchOptions opt;
  opt.num_perm = config.num_perm;
  EncodedTable enc = encoder.EncodeTable(BuildTableSketch(wide, opt));
  MlmSampler sampler(&config);
  Rng rng(3);
  EXPECT_EQ(sampler.Sample(enc, &rng).size(), config.max_masked_columns);
}

// ------------------------------------------------------------------ Model

TEST(ModelTest, EncodeShapes) {
  Rng rng(4);
  TabSketchFMConfig config = TinyConfig(64);
  TabSketchFM model(config, &rng);
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);
  SketchOptions opt;
  opt.num_perm = config.num_perm;
  EncodedTable enc = encoder.EncodeTable(BuildTableSketch(MakeToyTable(), opt));

  nn::Var hidden = model.Encode(enc, false, &rng);
  EXPECT_EQ(hidden->value().rows(), enc.size());
  EXPECT_EQ(hidden->value().cols(), config.encoder.hidden);
  nn::Var logits = model.MlmLogits(hidden);
  EXPECT_EQ(logits->value().cols(), config.vocab_size);
  nn::Var pooled = model.Pool(hidden);
  EXPECT_EQ(pooled->value().rows(), 1u);
  EXPECT_EQ(pooled->value().cols(), config.encoder.hidden);
}

TEST(ModelTest, CopyParamsMakesModelsIdentical) {
  Rng rng1(5), rng2(6);
  TabSketchFMConfig config = TinyConfig(64);
  TabSketchFM a(config, &rng1);
  TabSketchFM b(config, &rng2);
  CopyParams(a, b);
  auto pa = a.Params("m");
  auto pb = b.Params("m");
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (size_t j = 0; j < pa[i].var->value().size(); ++j) {
      ASSERT_FLOAT_EQ(pa[i].var->value()[j], pb[i].var->value()[j]);
    }
  }
}

// ------------------------------------------------------------ Pretraining

TEST(PretrainTest, LossDecreases) {
  lakebench::DomainCatalog catalog(7, 40);
  lakebench::CorpusScale cscale;
  cscale.num_tables = 8;
  cscale.augmentations = 1;
  auto corpus = lakebench::MakePretrainCorpus(catalog, cscale, 7);
  text::Vocab vocab = lakebench::BuildVocabFromTables(corpus, false);

  TabSketchFMConfig config = TinyConfig(vocab.size());
  Rng rng(8);
  TabSketchFM model(config, &rng);
  text::Tokenizer tokenizer(&vocab);
  InputEncoder encoder(&config, &tokenizer);

  SketchOptions sopt;
  sopt.num_perm = config.num_perm;
  std::vector<EncodedTable> train, val;
  for (size_t i = 0; i < corpus.size(); ++i) {
    EncodedTable enc = encoder.EncodeTable(BuildTableSketch(corpus[i], sopt));
    (i % 5 == 0 ? val : train).push_back(std::move(enc));
  }

  PretrainOptions popt;
  popt.epochs = 3;
  popt.batch_size = 4;
  popt.lr = 1e-3f;
  popt.seed = 1;
  Pretrainer pretrainer(&model, popt);
  PretrainResult result = pretrainer.Train(train, val);
  ASSERT_GE(result.train_losses.size(), 2u);
  EXPECT_LT(result.train_losses.back(), result.train_losses.front());
}

// ------------------------------------------------------------- Finetuning

TEST(FinetuneTest, CrossEncoderOverfitsTinyBinaryTask) {
  lakebench::DomainCatalog catalog(11, 40);
  lakebench::BenchScale scale;
  scale.num_pairs = 24;
  scale.rows = 16;
  PairDataset ds = lakebench::MakeTusSantos(catalog, scale, 3);
  SketchOptions sopt;
  sopt.num_perm = 8;
  ds.BuildSketches(sopt);

  std::vector<Table> all = ds.tables;
  text::Vocab vocab = lakebench::BuildVocabFromTables(all, false);
  TabSketchFMConfig config = TinyConfig(vocab.size());
  text::Tokenizer tokenizer(&vocab);
  InputEncoder input_encoder(&config, &tokenizer);

  Rng rng(9);
  CrossEncoder encoder(config, ds.task, ds.num_outputs, &rng);
  FinetuneOptions fopt;
  fopt.epochs = 10;
  fopt.lr = 5e-4f;
  fopt.patience = 10;
  Finetuner finetuner(&encoder, &input_encoder, fopt);
  FinetuneResult result = finetuner.Train(ds);
  EXPECT_LT(result.train_losses.back(), result.train_losses.front());

  // Predictions on train examples should mostly match labels.
  auto preds = finetuner.Predict(ds, ds.train);
  size_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    int label = preds[i][0] > 0.5f ? 1 : 0;
    if (label == ds.train[i].label) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.7);
}

// --------------------------------------------------------------- Embedder

TEST(EmbedderTest, ShapesAndDeterminism) {
  Rng rng(10);
  TabSketchFMConfig config = TinyConfig(64);
  TabSketchFM model(config, &rng);
  text::Vocab vocab = MakeToyVocab();
  text::Tokenizer tokenizer(&vocab);
  InputEncoder input_encoder(&config, &tokenizer);
  Embedder embedder(&model, &input_encoder);

  SketchOptions opt;
  opt.num_perm = config.num_perm;
  TableSketch sketch = BuildTableSketch(MakeToyTable(), opt);

  auto t1 = embedder.TableEmbedding(sketch);
  auto t2 = embedder.TableEmbedding(sketch);
  EXPECT_EQ(t1.size(), config.encoder.hidden);
  EXPECT_EQ(t1, t2);

  auto cols = embedder.ColumnEmbeddings(sketch);
  ASSERT_EQ(cols.size(), 3u);
  // Three z-normalized blocks: context + minhash proj + numerical proj.
  for (const auto& c : cols) EXPECT_EQ(c.size(), 3 * config.encoder.hidden);
  // Distinct columns embed differently.
  EXPECT_NE(cols[0], cols[1]);

  auto ctx_only = embedder.ContextualColumnStates(sketch);
  ASSERT_EQ(ctx_only.size(), 3u);
  for (const auto& c : ctx_only) EXPECT_EQ(c.size(), config.encoder.hidden);
}

TEST(EmbedderTest, ZNormalizeAndConcat) {
  std::vector<float> a = {1, 2, 3, 4};
  ZNormalize(&a);
  float mean = 0;
  for (float v : a) mean += v;
  EXPECT_NEAR(mean, 0.0f, 1e-5);

  auto cat = NormalizeAndConcat({1, 2, 3}, {10, 20, 30, 40});
  EXPECT_EQ(cat.size(), 7u);
}

TEST(EmbedderTest, ZNormalizeConstantVectorIsNoop) {
  std::vector<float> v = {5, 5, 5};
  ZNormalize(&v);
  EXPECT_FLOAT_EQ(v[0], 5.0f);
}

}  // namespace
}  // namespace tsfm::core
