// Mutable lakes (ROADMAP "Mutable lakes"): live AddTable/RemoveTable
// churn against sealed LakeIndex/ShardedLakeIndex, the delta/tombstone/
// compaction lifecycle, churn-parity with a from-scratch rebuild, the
// LAK2 v4 / LAKS v3 persistence gates, snapshot-consistent queries during
// compaction, and the serving stack's v3 mutation opcodes end to end
// (in-process server, auto-compaction, and the distributed coordinator).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "search/lake_index.h"
#include "search/lake_manifest.h"
#include "search/sharded_lake_index.h"
#include "server/backend.h"
#include "server/distributed_lake_index.h"
#include "server/lake_client.h"
#include "server/lake_server.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tsfm::search {
namespace {

using testutil::Corpus;
using testutil::MakeCorpus;
using testutil::RandomVec;
using testutil::RecallAtK;
using testutil::TempFile;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Every versioned format in this repo is `u32 magic, u32 version, ...`.
uint32_t FileVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  return version;
}

void PatchU32At(const std::string& path, size_t offset, uint32_t value) {
  std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
  io.seekp(static_cast<std::streamoff>(offset));
  io.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

LakeIndex BuildLake(const Corpus& corpus, size_t dim,
                    const IndexOptions& options = {}) {
  LakeIndex index(dim, options);
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  return index;
}

ShardedLakeIndex BuildShardedLake(const Corpus& corpus, size_t dim,
                                  size_t shards,
                                  const IndexOptions& options = {}) {
  ShardedLakeIndex index(dim, shards, options);
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  return index;
}

// One scripted churn burst, applied identically to any index-shaped thing:
// a batch of fresh tables, a batch of removals (some base, some delta, one
// double-add/remove pair), leaving a mix of pending deltas and tombstones.
struct ChurnScript {
  std::vector<std::pair<std::string, std::vector<std::vector<float>>>> adds;
  std::vector<std::string> removes;
};

ChurnScript MakeChurnScript(size_t dim, uint64_t seed) {
  ChurnScript script;
  Rng rng(seed);
  for (size_t t = 0; t < 8; ++t) {
    std::vector<std::vector<float>> cols(1 + t % 2);
    for (auto& col : cols) col = RandomVec(&rng, dim);
    script.adds.push_back({"delta_" + std::to_string(t), std::move(cols)});
  }
  // A duplicate id: newest-live must die first.
  script.adds.push_back({"table_3", {RandomVec(&rng, dim)}});
  script.removes = {"table_1", "table_7", "delta_2", "table_3",
                    "table_12", "delta_5"};
  return script;
}

template <typename Index>
void ApplyScript(Index* index, const ChurnScript& script) {
  for (const auto& [id, cols] : script.adds) index->AddTable(id, cols);
  for (const auto& id : script.removes) {
    ASSERT_TRUE(index->RemoveTable(id).ok()) << id;
  }
}

// The surviving (id, columns) list in original insertion order — what a
// from-scratch rebuild sees. Mirrors the newest-live removal rule.
Corpus Survivors(const Corpus& corpus, const ChurnScript& script) {
  std::vector<std::pair<std::string, std::vector<std::vector<float>>>> log;
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    log.push_back({corpus.ids[t], corpus.tables[t]});
  }
  for (const auto& add : script.adds) log.push_back(add);
  std::vector<bool> alive(log.size(), true);
  for (const auto& id : script.removes) {
    for (size_t i = log.size(); i-- > 0;) {
      if (alive[i] && log[i].first == id) {
        alive[i] = false;
        break;
      }
    }
  }
  Corpus out;
  out.join_queries = corpus.join_queries;
  out.union_queries = corpus.union_queries;
  for (size_t i = 0; i < log.size(); ++i) {
    if (!alive[i]) continue;
    out.ids.push_back(log[i].first);
    out.tables.push_back(log[i].second);
  }
  return out;
}

// ------------------------------------------------------- LakeIndex churn

TEST(MutableLakeTest, UnchurnedSavesKeepHistoricalFormatVersions) {
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(20, dim, 21);
  {
    TempFile file("mutable_unsealed.lak2");
    TempFile sealed_file("mutable_sealed.lak2");
    LakeIndex unsealed = BuildLake(corpus, dim);
    LakeIndex sealed = BuildLake(corpus, dim);
    sealed.Seal();
    ASSERT_TRUE(unsealed.Save(file.path()).ok());
    ASSERT_TRUE(sealed.Save(sealed_file.path()).ok());
    EXPECT_EQ(FileVersion(file.path()), 2u);
    // Sealing alone is not churn: the bytes must not move.
    EXPECT_EQ(ReadAll(file.path()), ReadAll(sealed_file.path()));
  }
  {
    TempFile file("mutable_sq8.lak2");
    IndexOptions sq8;
    sq8.storage = Storage::kSq8;
    LakeIndex index = BuildLake(corpus, dim, sq8);
    ASSERT_TRUE(index.Save(file.path()).ok());
    EXPECT_EQ(FileVersion(file.path()), 3u);
  }
}

TEST(MutableLakeTest, RemoveTableKillsNewestLiveAndReportsNotFound) {
  const size_t dim = 4;
  LakeIndex index(dim);
  Rng rng(22);
  const auto col_a = RandomVec(&rng, dim);
  const auto col_b = RandomVec(&rng, dim);
  index.AddTable("dup", {col_a});
  index.AddTable("dup", {col_b});
  index.Seal();
  EXPECT_EQ(index.num_live_tables(), 2u);

  // Newest live dies first; the older twin keeps serving.
  ASSERT_TRUE(index.RemoveTable("dup").ok());
  EXPECT_FALSE(index.is_live(1));
  EXPECT_TRUE(index.is_live(0));
  EXPECT_EQ(index.num_live_tables(), 1u);
  EXPECT_EQ(index.pending_tombstones(), 1u);

  ASSERT_TRUE(index.RemoveTable("dup").ok());
  EXPECT_EQ(index.num_live_tables(), 0u);

  Status missing = index.RemoveTable("dup");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_EQ(index.RemoveTable("never_existed").code(), StatusCode::kNotFound);
}

TEST(MutableLakeTest, PostSealAddsAndRemovesAreVisibleImmediately) {
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(10, dim, 23);
  LakeIndex index = BuildLake(corpus, dim);
  index.Seal();

  // A delta table whose column *is* the probe ranks first instantly.
  Rng rng(24);
  const auto probe = RandomVec(&rng, dim);
  index.AddTable("bullseye", {probe});
  EXPECT_EQ(index.pending_delta_tables(), 1u);
  auto ranked = index.QueryJoinable(probe, 3);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0], "bullseye");

  ASSERT_TRUE(index.RemoveTable("bullseye").ok());
  for (const auto& id : index.QueryJoinable(probe, 10)) {
    EXPECT_NE(id, "bullseye");
  }
}

TEST(MutableLakeTest, FlatChurnParityHoldsEvenBeforeCompaction) {
  // For float32 flat lakes the delta segment uses the identical kernel and
  // merge key as the base, so parity with a from-scratch build of the
  // survivors holds continuously — not just after Compact.
  const size_t dim = 16;
  Corpus corpus = MakeCorpus(40, dim, 25);
  ChurnScript script = MakeChurnScript(dim, 26);
  LakeIndex churned = BuildLake(corpus, dim);
  churned.Seal();
  ApplyScript(&churned, script);

  Corpus survivors = Survivors(corpus, script);
  LakeIndex rebuilt = BuildLake(survivors, dim);
  for (const auto& q : corpus.join_queries) {
    EXPECT_EQ(churned.QueryJoinable(q, 5), rebuilt.QueryJoinable(q, 5));
  }
  for (const auto& q : corpus.union_queries) {
    EXPECT_EQ(churned.QueryUnionable(q, 5), rebuilt.QueryUnionable(q, 5));
  }
}

TEST(MutableLakeTest, CompactRestoresParityForFloat32AndSq8) {
  const size_t dim = 16;
  Corpus corpus = MakeCorpus(40, dim, 27);
  ChurnScript script = MakeChurnScript(dim, 28);
  Corpus survivors = Survivors(corpus, script);
  for (auto storage : {Storage::kFloat32, Storage::kSq8}) {
    IndexOptions options;
    options.storage = storage;
    LakeIndex index = BuildLake(corpus, dim, options);
    index.Seal();
    ApplyScript(&index, script);
    EXPECT_TRUE(index.churned());
    ASSERT_TRUE(index.Compact().ok());

    // Handles re-densify to the survivors in insertion order, counters
    // reset, and rankings are bit-identical to a from-scratch build (for
    // sq8 the codec retrained over exactly the surviving rows).
    EXPECT_FALSE(index.churned());
    EXPECT_EQ(index.num_tables(), survivors.tables.size());
    EXPECT_EQ(index.pending_delta_tables(), 0u);
    EXPECT_EQ(index.pending_tombstones(), 0u);
    EXPECT_EQ(index.compactions(), 1u);
    for (size_t h = 0; h < survivors.ids.size(); ++h) {
      EXPECT_EQ(index.table_id(h), survivors.ids[h]);
    }
    LakeIndex rebuilt = BuildLake(survivors, dim, options);
    for (const auto& q : corpus.join_queries) {
      EXPECT_EQ(index.QueryJoinable(q, 5), rebuilt.QueryJoinable(q, 5));
    }
    for (const auto& q : corpus.union_queries) {
      EXPECT_EQ(index.QueryUnionable(q, 5), rebuilt.QueryUnionable(q, 5));
    }
  }
}

TEST(MutableLakeTest, ChurnedSaveWritesV4AndRoundTrips) {
  const size_t dim = 12;
  Corpus corpus = MakeCorpus(30, dim, 29);
  ChurnScript script = MakeChurnScript(dim, 30);
  for (auto storage : {Storage::kFloat32, Storage::kSq8}) {
    IndexOptions options;
    options.storage = storage;
    LakeIndex index = BuildLake(corpus, dim, options);
    index.Seal();
    ApplyScript(&index, script);

    TempFile file("mutable_churned_v4.lak2");
    ASSERT_TRUE(index.Save(file.path()).ok());
    EXPECT_EQ(FileVersion(file.path()), 4u);

    auto loaded = LakeIndex::Load(file.path());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().num_tables(), index.num_tables());
    EXPECT_EQ(loaded.value().num_live_tables(), index.num_live_tables());
    EXPECT_EQ(loaded.value().pending_delta_tables(),
              index.pending_delta_tables());
    EXPECT_EQ(loaded.value().pending_tombstones(), index.pending_tombstones());
    for (const auto& q : corpus.join_queries) {
      EXPECT_EQ(loaded.value().QueryJoinable(q, 5), index.QueryJoinable(q, 5));
    }
    // The loaded lake is sealed: more churn and a compaction still work.
    Rng rng(31);
    loaded.value().AddTable("post_load", {RandomVec(&rng, dim)});
    ASSERT_TRUE(loaded.value().Compact().ok());
  }
}

TEST(MutableLakeTest, NewerOrTruncatedChurnFilesRejectedCleanly) {
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(20, dim, 32);
  ChurnScript script = MakeChurnScript(dim, 33);
  LakeIndex index = BuildLake(corpus, dim);
  index.Seal();
  ApplyScript(&index, script);
  TempFile file("mutable_hostile.lak2");
  ASSERT_TRUE(index.Save(file.path()).ok());

  // A version from the future (what a pre-v4 reader sees in a churned
  // file, from the other side): clean ParseError naming the version.
  PatchU32At(file.path(), 4, 5);
  auto newer = LakeIndex::Load(file.path());
  ASSERT_FALSE(newer.ok());
  EXPECT_EQ(newer.status().code(), StatusCode::kParseError);
  EXPECT_NE(newer.status().ToString().find("newer format version"),
            std::string::npos)
      << newer.status().ToString();
  PatchU32At(file.path(), 4, 4);

  const std::string bytes = ReadAll(file.path());
  for (size_t keep : {size_t{6}, size_t{30}, bytes.size() / 2,
                      bytes.size() - 3}) {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(LakeIndex::Load(file.path()).ok()) << "kept " << keep;
  }
}

TEST(MutableLakeTest, HnswFoldsInPlaceUnderThresholdThenRebuilds) {
  const size_t dim = 16, k = 10;
  Corpus corpus = MakeCorpus(200, dim, 34);
  ChurnScript script = MakeChurnScript(dim, 35);
  IndexOptions hnsw;
  hnsw.backend = IndexBackend::kHnsw;
  hnsw.hnsw.ef_search = 128;
  LakeIndex index = BuildLake(corpus, dim, hnsw);
  index.Seal();
  ApplyScript(&index, script);
  const size_t tombstones = index.pending_tombstones();
  ASSERT_GT(tombstones, 0u);

  // Dead fraction is well under 0.5: fold in place. Deltas enter the
  // graph; tombstones stay (still filtered at query time).
  ASSERT_TRUE(index.WouldFoldInPlace(0.5));
  ASSERT_TRUE(index.Compact(/*hnsw_rebuild_threshold=*/0.5).ok());
  EXPECT_EQ(index.pending_delta_tables(), 0u);
  EXPECT_EQ(index.pending_tombstones(), tombstones);
  EXPECT_EQ(index.compactions(), 1u);

  // The default threshold forces the full graph rebuild: handles densify
  // and the acceptance bar is recall@10 >= 0.95 against flat gold over
  // the survivors.
  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.pending_tombstones(), 0u);
  EXPECT_EQ(index.compactions(), 2u);
  Corpus survivors = Survivors(corpus, script);
  EXPECT_EQ(index.num_tables(), survivors.tables.size());
  LakeIndex flat_gold = BuildLake(survivors, dim);
  double recall_sum = 0;
  for (const auto& q : corpus.join_queries) {
    auto gold = flat_gold.QueryJoinable(q, k);
    ASSERT_GE(gold.size(), k);
    recall_sum += RecallAtK(gold, index.QueryJoinable(q, k), k);
  }
  EXPECT_GE(recall_sum / static_cast<double>(corpus.join_queries.size()), 0.95);
}

// ------------------------------------------------ ShardedLakeIndex churn

TEST(MutableLakeTest, ShardedChurnParityAcrossShardCountsAndStorage) {
  const size_t dim = 16;
  Corpus corpus = MakeCorpus(40, dim, 36);
  ChurnScript script = MakeChurnScript(dim, 37);
  Corpus survivors = Survivors(corpus, script);
  ThreadPool pool(2);
  for (auto storage : {Storage::kFloat32, Storage::kSq8}) {
    IndexOptions options;
    options.storage = storage;
    LakeIndex rebuilt_gold = BuildLake(survivors, dim, options);
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      ShardedLakeIndex index = BuildShardedLake(corpus, dim, shards, options);
      index.Seal();
      ApplyScript(&index, script);
      if (storage == Storage::kFloat32) {
        // Flat float32 parity holds before compaction too.
        ShardedLakeIndex churned_twin =
            BuildShardedLake(survivors, dim, shards, options);
        for (const auto& q : corpus.join_queries) {
          EXPECT_EQ(index.QueryJoinable(q, 5), churned_twin.QueryJoinable(q, 5))
              << shards << " shards, pre-compaction";
        }
      }
      ASSERT_TRUE(index.Compact(/*hnsw_rebuild_threshold=*/0.0, &pool).ok());
      EXPECT_EQ(index.num_tables(), survivors.tables.size());
      EXPECT_EQ(index.pending_tombstones(), 0u);
      EXPECT_EQ(index.compactions(), 1u);
      for (size_t h = 0; h < survivors.ids.size(); ++h) {
        EXPECT_EQ(index.table_id(h), survivors.ids[h]);
      }
      ShardedLakeIndex sharded_gold =
          BuildShardedLake(survivors, dim, shards, options);
      for (const auto& q : corpus.join_queries) {
        EXPECT_EQ(index.QueryJoinable(q, 5), sharded_gold.QueryJoinable(q, 5))
            << shards << " shards";
        EXPECT_EQ(index.QueryJoinable(q, 5), rebuilt_gold.QueryJoinable(q, 5))
            << shards << " shards vs unsharded";
      }
      for (const auto& q : corpus.union_queries) {
        EXPECT_EQ(index.QueryUnionable(q, 5), sharded_gold.QueryUnionable(q, 5))
            << shards << " shards";
      }
    }
  }
}

TEST(MutableLakeTest, ShardedChurnedManifestWritesV3AndRoundTrips) {
  const size_t dim = 12;
  Corpus corpus = MakeCorpus(30, dim, 38);
  ChurnScript script = MakeChurnScript(dim, 39);
  {
    // Unchurned float32 stays at manifest version 1 — pre-v3 readers keep
    // loading frozen lakes they always could.
    TempFile file("mutable_unchurned.laks");
    ShardedLakeIndex frozen = BuildShardedLake(corpus, dim, 3);
    ASSERT_TRUE(frozen.Save(file.path()).ok());
    EXPECT_EQ(FileVersion(file.path()), 1u);
  }
  TempFile file("mutable_churned.laks");
  ShardedLakeIndex index = BuildShardedLake(corpus, dim, 3);
  index.Seal();
  ApplyScript(&index, script);
  ASSERT_TRUE(index.Save(file.path()).ok());
  EXPECT_EQ(FileVersion(file.path()), 3u);

  auto loaded = ShardedLakeIndex::Load(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_tables(), index.num_tables());
  EXPECT_EQ(loaded.value().num_live_tables(), index.num_live_tables());
  EXPECT_EQ(loaded.value().pending_tombstones(), index.pending_tombstones());
  for (const auto& q : corpus.join_queries) {
    EXPECT_EQ(loaded.value().QueryJoinable(q, 5), index.QueryJoinable(q, 5));
  }

  // A manifest whose live-table count disagrees with the shard files is a
  // torn save: clean ParseError, not silent wrong answers. The count sits
  // after magic+version+backend+metric+storage+dim = 28 bytes.
  PatchU32At(file.path(), 28, 1u << 20);
  auto torn = ShardedLakeIndex::Load(file.path());
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kParseError);
}

TEST(MutableLakeTest, QueriesDuringCompactionSeeExactlyOneEpoch) {
  // Snapshot consistency: every concurrent query result must equal the
  // ranking of *some* epoch the lake actually passed through — never a
  // blend of two. The twin replays the same ops to precompute every legal
  // per-epoch ranking before the racing starts.
  const size_t dim = 8, k = 8;
  Corpus corpus = MakeCorpus(30, dim, 40);
  ChurnScript script = MakeChurnScript(dim, 41);
  const auto probe = corpus.join_queries[0];

  std::vector<std::vector<std::string>> epochs;
  {
    ShardedLakeIndex twin = BuildShardedLake(corpus, dim, 2);
    twin.Seal();
    epochs.push_back(twin.QueryJoinable(probe, k));
    for (const auto& [id, cols] : script.adds) {
      twin.AddTable(id, cols);
      epochs.push_back(twin.QueryJoinable(probe, k));
    }
    for (const auto& id : script.removes) {
      ASSERT_TRUE(twin.RemoveTable(id).ok());
      epochs.push_back(twin.QueryJoinable(probe, k));
    }
    // Flat compaction is rank-preserving, so it adds no new epoch.
    ASSERT_TRUE(twin.Compact().ok());
    EXPECT_EQ(twin.QueryJoinable(probe, k), epochs.back());
  }

  ShardedLakeIndex index = BuildShardedLake(corpus, dim, 2);
  index.Seal();
  std::atomic<bool> stop{false};
  std::atomic<size_t> checked{0};
  std::thread querier([&] {
    while (!stop.load()) {
      auto ranked = index.QueryJoinable(probe, k);
      bool known = false;
      for (const auto& epoch : epochs) {
        if (ranked == epoch) {
          known = true;
          break;
        }
      }
      EXPECT_TRUE(known) << "query observed a ranking matching no epoch";
      checked.fetch_add(1);
      if (!known) break;
    }
  });
  for (const auto& [id, cols] : script.adds) {
    index.AddTable(id, cols);
    std::this_thread::yield();
  }
  for (const auto& id : script.removes) {
    ASSERT_TRUE(index.RemoveTable(id).ok());
    std::this_thread::yield();
  }
  // Compactions race the querier directly: the off-lock rebuild plus
  // atomic swap must never surface a half-compacted lake.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(index.Compact().ok());
  }
  stop.store(true);
  querier.join();
  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(index.QueryJoinable(probe, k), epochs.back());
}

}  // namespace

// --------------------------------------------------- serving stack churn

namespace server_churn {
namespace {

using server::DistributedLakeIndex;
using server::LakeClient;
using server::LakeServer;
using server::ServerOptions;
using testutil::Corpus;
using testutil::MakeCorpus;
using testutil::RandomVec;
using testutil::TempFile;

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/tsfm_mutable_lake_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

ShardedLakeIndex BuildShardedLake(const Corpus& corpus, size_t dim,
                                  size_t shards,
                                  const IndexOptions& options = {}) {
  ShardedLakeIndex index(dim, shards, options);
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  return index;
}

TEST(MutableLakeServerTest, MutationOpcodesEndToEnd) {
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(20, dim, 50);
  LakeServer server(BuildShardedLake(corpus, dim, 2));
  const std::string socket = UniqueSocketPath();
  ASSERT_TRUE(server.Start(socket).ok());

  LakeClient client;
  ASSERT_TRUE(client.Connect(socket).ok());
  Rng rng(51);
  const auto probe = RandomVec(&rng, dim);
  ASSERT_TRUE(client.AddTable("wire_added", {probe}).ok());
  auto ranked = client.QueryJoinable(probe, 3);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked.value().empty());
  EXPECT_EQ(ranked.value()[0], "wire_added");

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().pending_delta_tables, 1u);
  EXPECT_EQ(stats.value().compactions, 0u);

  ASSERT_TRUE(client.RemoveTable("table_0").ok());
  EXPECT_EQ(client.RemoveTable("table_0").code(), StatusCode::kNotFound);
  ASSERT_TRUE(client.Compact().ok());

  stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().pending_delta_tables, 0u);
  EXPECT_EQ(stats.value().pending_tombstones, 0u);
  EXPECT_EQ(stats.value().compactions, 1u);

  ranked = client.QueryJoinable(probe, 3);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked.value()[0], "wire_added");
  for (const auto& id : ranked.value()) EXPECT_NE(id, "table_0");

  // A dim mismatch on ADD_TABLE is the server's clean error, not a hang.
  EXPECT_EQ(client.AddTable("bad", {{1.0f, 2.0f}}).code(),
            StatusCode::kInvalidArgument);
  server.Stop();
  ::unlink(socket.c_str());
}

TEST(MutableLakeServerTest, AutoCompactionTriggersOnPendingChurn) {
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(10, dim, 52);
  ServerOptions options;
  options.auto_compact_pending = 2;
  LakeServer server(BuildShardedLake(corpus, dim, 1), options);
  const std::string socket = UniqueSocketPath();
  ASSERT_TRUE(server.Start(socket).ok());

  LakeClient client;
  ASSERT_TRUE(client.Connect(socket).ok());
  Rng rng(53);
  ASSERT_TRUE(client.AddTable("auto_a", {RandomVec(&rng, dim)}).ok());
  ASSERT_TRUE(client.AddTable("auto_b", {RandomVec(&rng, dim)}).ok());

  // The fold runs in the background on the query pool; poll stats.
  bool compacted = false;
  for (int attempt = 0; attempt < 200 && !compacted; ++attempt) {
    auto stats = client.Stats();
    ASSERT_TRUE(stats.ok());
    compacted = stats.value().compactions >= 1 &&
                stats.value().pending_delta_tables == 0;
    if (!compacted) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(compacted) << "auto-compaction never ran";
  server.Stop();
  ::unlink(socket.c_str());
}

TEST(MutableLakeServerTest, DistributedCoordinatorMutationsMirrorInProcess) {
  const size_t dim = 8;
  const size_t shards = 2;
  Corpus corpus = MakeCorpus(24, dim, 54);
  TempFile manifest("mutable_distributed.laks");
  {
    ShardedLakeIndex built = BuildShardedLake(corpus, dim, shards);
    ASSERT_TRUE(built.Save(manifest.path()).ok());
  }

  // In-process worker fleet: one LakeServer per shard file.
  std::vector<std::unique_ptr<LakeServer>> workers;
  std::vector<std::string> sockets;
  for (size_t s = 0; s < shards; ++s) {
    auto shard = ShardedLakeIndex::Load(
        LakeShardFileName(manifest.path(), s));
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    workers.push_back(
        std::make_unique<LakeServer>(std::move(shard).value()));
    sockets.push_back(UniqueSocketPath());
    ASSERT_TRUE(workers.back()->Start(sockets.back()).ok());
  }
  auto connected = DistributedLakeIndex::Connect(manifest.path(), sockets);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  DistributedLakeIndex coordinator = std::move(connected).value();

  // The in-process twin replays the same mutations; flat parity must hold
  // through churn and across the coordinated compaction.
  ShardedLakeIndex twin = BuildShardedLake(corpus, dim, shards);
  twin.Seal();
  Rng rng(55);
  for (size_t t = 0; t < 6; ++t) {
    const std::string id = "wire_" + std::to_string(t);
    const std::vector<std::vector<float>> cols = {RandomVec(&rng, dim)};
    ASSERT_TRUE(coordinator.AddTable(id, cols).ok());
    twin.AddTable(id, cols);
  }
  for (const std::string id : {"table_2", "wire_3", "table_11"}) {
    ASSERT_TRUE(coordinator.RemoveTable(id).ok());
    ASSERT_TRUE(twin.RemoveTable(id).ok());
  }
  EXPECT_EQ(coordinator.RemoveTable("wire_3").code(), StatusCode::kNotFound);
  EXPECT_EQ(coordinator.Churn().pending_delta_tables, 6u);
  EXPECT_EQ(coordinator.Churn().pending_tombstones, 3u);
  for (const auto& q : corpus.join_queries) {
    auto ranked = coordinator.QueryJoinable(q, 5);
    ASSERT_TRUE(ranked.ok());
    EXPECT_EQ(ranked.value(), twin.QueryJoinable(q, 5));
  }

  ASSERT_TRUE(coordinator.Compact().ok());
  ASSERT_TRUE(twin.Compact().ok());
  EXPECT_EQ(coordinator.num_tables(), twin.num_tables());
  EXPECT_EQ(coordinator.Churn().pending_tombstones, 0u);
  EXPECT_EQ(coordinator.Churn().compactions, 1u);
  for (size_t h = 0; h < twin.num_tables(); ++h) {
    EXPECT_EQ(coordinator.table_id(h), twin.table_id(h));
  }
  for (const auto& q : corpus.join_queries) {
    auto ranked = coordinator.QueryJoinable(q, 5);
    ASSERT_TRUE(ranked.ok());
    EXPECT_EQ(ranked.value(), twin.QueryJoinable(q, 5));
  }
  for (const auto& q : corpus.union_queries) {
    auto ranked = coordinator.QueryUnionable(q, 5);
    ASSERT_TRUE(ranked.ok());
    EXPECT_EQ(ranked.value(), twin.QueryUnionable(q, 5));
  }

  for (size_t s = 0; s < shards; ++s) {
    workers[s]->Stop();
    ::unlink(sockets[s].c_str());
  }
}

TEST(MutableLakeServerTest, CoordinatorRefusesMutationsOnChurnedManifest) {
  // The handshake cannot see per-handle tombstones, so a coordinator over
  // a churned manifest serves queries but declines mutations cleanly.
  const size_t dim = 8;
  Corpus corpus = MakeCorpus(12, dim, 56);
  TempFile manifest("mutable_churned_coord.laks");
  {
    ShardedLakeIndex built = BuildShardedLake(corpus, dim, 2);
    built.Seal();
    ASSERT_TRUE(built.RemoveTable("table_1").ok());
    ASSERT_TRUE(built.Save(manifest.path()).ok());
  }
  std::vector<std::unique_ptr<LakeServer>> workers;
  std::vector<std::string> sockets;
  for (size_t s = 0; s < 2; ++s) {
    auto shard = ShardedLakeIndex::Load(
        LakeShardFileName(manifest.path(), s));
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    workers.push_back(
        std::make_unique<LakeServer>(std::move(shard).value()));
    sockets.push_back(UniqueSocketPath());
    ASSERT_TRUE(workers.back()->Start(sockets.back()).ok());
  }
  auto connected = DistributedLakeIndex::Connect(manifest.path(), sockets);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();

  Rng rng(57);
  Status refused =
      connected.value().AddTable("nope", {RandomVec(&rng, dim)});
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.ToString().find("churned"), std::string::npos)
      << refused.ToString();
  EXPECT_EQ(connected.value().Churn().pending_tombstones, 1u);
  // Queries still serve, tombstones filtered worker-side.
  for (const auto& q : corpus.join_queries) {
    auto ranked = connected.value().QueryJoinable(q, 20);
    ASSERT_TRUE(ranked.ok());
    for (const auto& id : ranked.value()) EXPECT_NE(id, "table_1");
  }
  for (size_t s = 0; s < 2; ++s) {
    workers[s]->Stop();
    ::unlink(sockets[s].c_str());
  }
}

}  // namespace
}  // namespace server_churn
}  // namespace tsfm::search
