#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <cstdlib>

#include "search/distance_kernels.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tsfm {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnit) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasApproximateMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(3);
  auto idx = rng.SampleIndices(100, 30);
  ASSERT_EQ(idx.size(), 30u);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesAllWhenKExceedsN) {
  Rng rng(3);
  auto idx = rng.SampleIndices(5, 99);
  ASSERT_EQ(idx.size(), 5u);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 5u);
}

// ------------------------------------------------------------------- Hash

TEST(HashTest, Murmur3IsDeterministic) {
  EXPECT_EQ(Murmur3_32("hello", 0), Murmur3_32("hello", 0));
  EXPECT_NE(Murmur3_32("hello", 0), Murmur3_32("hello", 1));
  EXPECT_NE(Murmur3_32("hello", 0), Murmur3_32("hellp", 0));
}

TEST(HashTest, Murmur3HandlesAllTailLengths) {
  // Exercise the 0..3 tail-byte switch.
  std::set<uint32_t> hashes;
  for (const char* s : {"", "a", "ab", "abc", "abcd", "abcde"}) {
    hashes.insert(Murmur3_32(s, 42));
  }
  EXPECT_EQ(hashes.size(), 6u);
}

TEST(HashTest, Fnv1a64KnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, SplitMix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t a = SplitMix64(0x1234);
  uint64_t b = SplitMix64(0x1235);
  int diff = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

TEST(HashTest, HashCombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ----------------------------------------------------------------- Strings

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringTest, JoinRoundTrip) {
  std::vector<std::string> v = {"x", "y", "z"};
  EXPECT_EQ(Join(v, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringTest, ToLowerAscii) { EXPECT_EQ(ToLower("AbC123"), "abc123"); }

TEST(StringTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("##piece", "##"));
  EXPECT_FALSE(StartsWith("#piece", "##"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringTest, IsDigits) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-1"));
}

TEST(StringTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 1), "-1.0");
}

TEST(StringTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcde", 3), "abcde");
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(50);
  ParallelFor(&pool, 0, 50, [&](size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  ParallelFor(&pool, 5, 5, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();  // must run everything already accepted, then join
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedAndWaitDoesNotWedge) {
  ThreadPool pool(2);
  pool.Shutdown();
  // A task accepted now would never run — in_flight would stay nonzero and
  // Wait() below would block forever. Rejection is the only safe answer.
  EXPECT_FALSE(pool.Submit([] { FAIL() << "must not run"; }));
  pool.Wait();  // returns immediately; wedging here is the bug
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, ConcurrentSubmitDuringShutdownNeverLosesAcceptedTasks) {
  // Hammer Submit from several threads while the pool shuts down. Every
  // accepted task must execute (else Wait()/Shutdown() can wedge on a
  // stranded in_flight count); every rejected task must not.
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  auto pool = std::make_unique<ThreadPool>(2);
  std::vector<std::thread> submitters;
  std::atomic<bool> go{false};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 500; ++i) {
        if (pool->Submit([&executed] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  go.store(true);
  pool->Shutdown();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST(ThreadPoolTest, ParallelForOnShutDownPoolStillCoversRange) {
  ThreadPool pool(2);
  pool.Shutdown();
  // The pool rejects everything, so ParallelFor must fall back to running
  // the whole range inline rather than silently skipping it.
  std::vector<std::atomic<int>> touched(20);
  ParallelFor(&pool, 0, 20, [&](size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForOnShutDownPoolRunsRejectedWorkInlineExactlyOnce) {
  // Assertion-style pin of the full shutdown contract in thread_pool.h,
  // which the server's drain path relies on (QueryBatcher::RunGroup may
  // issue a ParallelFor racing Stop()'s pool teardown): on a shut pool,
  // every index runs (1) exactly once, (2) on the *calling* thread, and
  // (3) in ascending order — i.e. the serial inline fallback, not a
  // half-parallel remnant that could reorder or drop work.
  ThreadPool pool(3);
  pool.Shutdown();
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> runs(64, 0);
  std::vector<size_t> order;
  bool all_on_caller = true;
  ParallelFor(&pool, 0, 64, [&](size_t i) {
    // No synchronization on purpose: if the fallback ever ran off-thread,
    // TSan/ASan runs of this test would flag it even before the asserts.
    runs[i] += 1;
    order.push_back(i);
    if (std::this_thread::get_id() != caller) all_on_caller = false;
  });
  for (size_t i = 0; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i], 1) << "index " << i << " ran " << runs[i] << " times";
  }
  ASSERT_TRUE(all_on_caller) << "inline fallback left the calling thread";
  ASSERT_EQ(order.size(), runs.size());
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), 0.0);
}

// ------------------------------------------------------------------ Mutex

TEST(MutexTest, MutexLockExcludesOtherThreads) {
  Mutex mu;
  bool contended_try = true;
  {
    MutexLock lock(&mu);
    // TryLock must be probed from another thread: self-try_lock on a held
    // std::mutex is undefined behavior.
    std::thread prober([&] { contended_try = mu.TryLock(); });
    prober.join();
    EXPECT_FALSE(contended_try);
  }
  std::thread prober([&] {
    contended_try = mu.TryLock();
    if (contended_try) mu.Unlock();
  });
  prober.join();
  EXPECT_TRUE(contended_try) << "MutexLock leaked the lock past its scope";
}

TEST(MutexTest, MutexLockSerializesIncrements) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the lock is the protection
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(MutexTest, ReaderLocksShareWriterLocksExclude) {
  SharedMutex mu;
  std::atomic<bool> second_reader_entered{false};
  {
    ReaderMutexLock reader(&mu);
    // A second shared lock must not block while the first is held.
    std::thread other([&] {
      ReaderMutexLock nested(&mu);
      second_reader_entered.store(true);
    });
    other.join();
    EXPECT_TRUE(second_reader_entered.load());
  }
  // Writers are exclusive: hold the writer side, verify a reader cannot
  // enter until release, without timing assumptions — the reader thread
  // records whether the guarded value was fully published first.
  int guarded = 0;
  std::atomic<bool> reader_saw_final{false};
  std::thread reader;
  {
    WriterMutexLock writer(&mu);
    reader = std::thread([&] {
      ReaderMutexLock lock(&mu);
      reader_saw_final.store(guarded == 42);
    });
    guarded = 42;  // published before the writer lock is released
  }
  reader.join();
  EXPECT_TRUE(reader_saw_final.load());
}

TEST(MutexTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool consumed = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
    // Wait for the consumer under the same lock: Wait must have released
    // it or the producer could never have gotten here.
    while (!consumed) cv.Wait(mu);
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    consumed = true;
    cv.NotifyOne();
  }
  producer.join();
  EXPECT_TRUE(consumed);
}

TEST(MutexTest, CondVarWaitForTimesOutWithLockReacquired) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  // Nobody notifies; WaitFor must come back false with the lock held (the
  // guarded write below would be a TSan race if reacquisition failed).
  EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(5)));
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, PoolThreadsLoggingThroughShutdownDoNotRace) {
  // Pins the leaked-sink-mutex fix in util/logging.cc: workers still
  // logging while the pool tears down (and after, on the main thread)
  // must serialize on a sink lock that is guaranteed to outlive them.
  // Run under TSan to make this assertion-strength.
  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep test output quiet; kInfo is emitted
  auto pool = std::make_unique<ThreadPool>(4);
  for (int i = 0; i < 64; ++i) {
    (void)pool->Submit([i] { TSFM_LOG(Info) << "worker message " << i; });
  }
  pool->Shutdown();
  TSFM_LOG(Info) << "after shutdown";
  SetLogLevel(previous);
}

// ----------------------------------------------------- kernel env override

TEST(KernelSelectionTest, ForceScalarEnvOverrideComposes) {
  // LAKS_FORCE_SCALAR must force the scalar set on (re)selection and must
  // not disturb BestKernels(), which parity tests use to reach SIMD in the
  // same process. Composes with the TSan job: that build re-runs this test
  // with the override exercised under the race detector.
  const char* before = std::getenv("LAKS_FORCE_SCALAR");
  const std::string saved = before != nullptr ? before : "";

  ASSERT_EQ(setenv("LAKS_FORCE_SCALAR", "1", /*overwrite=*/1), 0);
  search::internal::OverrideKernelsForTest(nullptr);  // force re-selection
  EXPECT_EQ(&search::Kernels(), &search::ScalarKernels());
  // "0" and empty mean no override.
  ASSERT_EQ(setenv("LAKS_FORCE_SCALAR", "0", /*overwrite=*/1), 0);
  search::internal::OverrideKernelsForTest(nullptr);
  EXPECT_EQ(&search::Kernels(), &search::BestKernels());

  if (before != nullptr) {
    ASSERT_EQ(setenv("LAKS_FORCE_SCALAR", saved.c_str(), /*overwrite=*/1), 0);
  } else {
    ASSERT_EQ(unsetenv("LAKS_FORCE_SCALAR"), 0);
  }
  search::internal::OverrideKernelsForTest(nullptr);
  EXPECT_EQ(&search::Kernels(),
            search::internal::ForceScalarFromEnvForTest()
                ? &search::ScalarKernels()
                : &search::BestKernels());
}

}  // namespace
}  // namespace tsfm
