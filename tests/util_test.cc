#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "util/hash.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tsfm {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnit) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasApproximateMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(3);
  auto idx = rng.SampleIndices(100, 30);
  ASSERT_EQ(idx.size(), 30u);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesAllWhenKExceedsN) {
  Rng rng(3);
  auto idx = rng.SampleIndices(5, 99);
  ASSERT_EQ(idx.size(), 5u);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 5u);
}

// ------------------------------------------------------------------- Hash

TEST(HashTest, Murmur3IsDeterministic) {
  EXPECT_EQ(Murmur3_32("hello", 0), Murmur3_32("hello", 0));
  EXPECT_NE(Murmur3_32("hello", 0), Murmur3_32("hello", 1));
  EXPECT_NE(Murmur3_32("hello", 0), Murmur3_32("hellp", 0));
}

TEST(HashTest, Murmur3HandlesAllTailLengths) {
  // Exercise the 0..3 tail-byte switch.
  std::set<uint32_t> hashes;
  for (const char* s : {"", "a", "ab", "abc", "abcd", "abcde"}) {
    hashes.insert(Murmur3_32(s, 42));
  }
  EXPECT_EQ(hashes.size(), 6u);
}

TEST(HashTest, Fnv1a64KnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, SplitMix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t a = SplitMix64(0x1234);
  uint64_t b = SplitMix64(0x1235);
  int diff = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

TEST(HashTest, HashCombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ----------------------------------------------------------------- Strings

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringTest, JoinRoundTrip) {
  std::vector<std::string> v = {"x", "y", "z"};
  EXPECT_EQ(Join(v, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringTest, ToLowerAscii) { EXPECT_EQ(ToLower("AbC123"), "abc123"); }

TEST(StringTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("##piece", "##"));
  EXPECT_FALSE(StartsWith("#piece", "##"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringTest, IsDigits) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-1"));
}

TEST(StringTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 1), "-1.0");
}

TEST(StringTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcde", 3), "abcde");
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(50);
  ParallelFor(&pool, 0, 50, [&](size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  ParallelFor(&pool, 5, 5, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();  // must run everything already accepted, then join
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedAndWaitDoesNotWedge) {
  ThreadPool pool(2);
  pool.Shutdown();
  // A task accepted now would never run — in_flight would stay nonzero and
  // Wait() below would block forever. Rejection is the only safe answer.
  EXPECT_FALSE(pool.Submit([] { FAIL() << "must not run"; }));
  pool.Wait();  // returns immediately; wedging here is the bug
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, ConcurrentSubmitDuringShutdownNeverLosesAcceptedTasks) {
  // Hammer Submit from several threads while the pool shuts down. Every
  // accepted task must execute (else Wait()/Shutdown() can wedge on a
  // stranded in_flight count); every rejected task must not.
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  auto pool = std::make_unique<ThreadPool>(2);
  std::vector<std::thread> submitters;
  std::atomic<bool> go{false};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 500; ++i) {
        if (pool->Submit([&executed] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  go.store(true);
  pool->Shutdown();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(executed.load(), accepted.load());
}

TEST(ThreadPoolTest, ParallelForOnShutDownPoolStillCoversRange) {
  ThreadPool pool(2);
  pool.Shutdown();
  // The pool rejects everything, so ParallelFor must fall back to running
  // the whole range inline rather than silently skipping it.
  std::vector<std::atomic<int>> touched(20);
  ParallelFor(&pool, 0, 20, [&](size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForOnShutDownPoolRunsRejectedWorkInlineExactlyOnce) {
  // Assertion-style pin of the full shutdown contract in thread_pool.h,
  // which the server's drain path relies on (QueryBatcher::RunGroup may
  // issue a ParallelFor racing Stop()'s pool teardown): on a shut pool,
  // every index runs (1) exactly once, (2) on the *calling* thread, and
  // (3) in ascending order — i.e. the serial inline fallback, not a
  // half-parallel remnant that could reorder or drop work.
  ThreadPool pool(3);
  pool.Shutdown();
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> runs(64, 0);
  std::vector<size_t> order;
  bool all_on_caller = true;
  ParallelFor(&pool, 0, 64, [&](size_t i) {
    // No synchronization on purpose: if the fallback ever ran off-thread,
    // TSan/ASan runs of this test would flag it even before the asserts.
    runs[i] += 1;
    order.push_back(i);
    if (std::this_thread::get_id() != caller) all_on_caller = false;
  });
  for (size_t i = 0; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i], 1) << "index " << i << " ran " << runs[i] << " times";
  }
  ASSERT_TRUE(all_on_caller) << "inline fallback left the calling thread";
  ASSERT_EQ(order.size(), runs.size());
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), 0.0);
}

}  // namespace
}  // namespace tsfm
