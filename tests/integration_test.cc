// End-to-end: corpus -> vocab -> pretrain -> fine-tune -> search, at toy
// scale. Verifies the full TabSketchFM pipeline produces useful embeddings.
#include <gtest/gtest.h>

#include "core/cross_encoder.h"
#include "table/csv.h"
#include "core/embedder.h"
#include "core/finetuner.h"
#include "core/pretrainer.h"
#include "lakebench/corpus.h"
#include "lakebench/finetune_benchmarks.h"
#include "lakebench/search_benchmarks.h"
#include "search/metrics.h"
#include "search/pipeline.h"

namespace tsfm {
namespace {

TEST(IntegrationTest, PretrainFinetuneSearch) {
  lakebench::DomainCatalog catalog(42, 40);

  // 1. Pretraining corpus + vocabulary.
  lakebench::CorpusScale cscale;
  cscale.num_tables = 12;
  cscale.augmentations = 1;
  auto corpus = lakebench::MakePretrainCorpus(catalog, cscale, 1);
  text::Vocab vocab = lakebench::BuildVocabFromTables(corpus, false);

  core::TabSketchFMConfig config;
  config.encoder.hidden = 24;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 48;
  config.encoder.dropout = 0.0f;
  config.vocab_size = vocab.size();
  config.max_seq_len = 64;
  config.num_perm = 8;

  text::Tokenizer tokenizer(&vocab);
  core::InputEncoder input_encoder(&config, &tokenizer);

  // 2. Pretrain briefly.
  Rng rng(2);
  core::TabSketchFM pretrained(config, &rng);
  SketchOptions sopt;
  sopt.num_perm = config.num_perm;
  std::vector<core::EncodedTable> train_enc, val_enc;
  for (size_t i = 0; i < corpus.size(); ++i) {
    auto enc = input_encoder.EncodeTable(BuildTableSketch(corpus[i], sopt));
    (i % 6 == 0 ? val_enc : train_enc).push_back(std::move(enc));
  }
  core::PretrainOptions popt;
  popt.epochs = 2;
  popt.batch_size = 4;
  core::Pretrainer pretrainer(&pretrained, popt);
  auto pretrain_result = pretrainer.Train(train_enc, val_enc);
  EXPECT_GE(pretrain_result.epochs_run, 1u);

  // 3. Fine-tune a cross-encoder on a union task, initialized from the
  //    pretrained weights.
  lakebench::BenchScale bscale;
  bscale.num_pairs = 24;
  bscale.rows = 16;
  auto ds = lakebench::MakeTusSantos(catalog, bscale, 3);
  ds.BuildSketches(sopt);

  core::CrossEncoder encoder(config, ds.task, ds.num_outputs, &rng, &pretrained);
  core::FinetuneOptions fopt;
  fopt.epochs = 8;
  fopt.lr = 5e-4f;
  fopt.patience = 8;
  core::Finetuner finetuner(&encoder, &input_encoder, fopt);
  auto ft_result = finetuner.Train(ds);
  EXPECT_LT(ft_result.train_losses.back(), ft_result.train_losses.front());

  // 4. Use the fine-tuned model's column embeddings for union search.
  lakebench::UnionSearchScale uscale;
  uscale.num_seeds = 3;
  uscale.variants_per_seed = 4;
  uscale.num_queries = 5;
  uscale.rows = 16;
  auto bench = lakebench::MakeUnionSearch(catalog, uscale, 4, "mini-union");
  bench.BuildSketches(sopt);

  core::Embedder embedder(encoder.model(), &input_encoder);
  auto embed = [&](size_t t) { return embedder.ColumnEmbeddings(bench.sketches[t]); };
  auto report = search::EvaluateEmbeddingSearch(bench, embed, 3);
  // Better than random: chance recall@3 with 3 relevant of 11 others ~ 0.27.
  EXPECT_GT(report.recall_at_k[2], 0.3);
}

TEST(IntegrationTest, CsvToSketchToEmbedding) {
  // The quickstart path: parse a CSV, sketch it, embed it.
  auto parsed = ParseCsv(
      "city,population,founded\n"
      "alphaville,120000,1888-01-01\n"
      "betatown,45000,1910-06-15\n");
  ASSERT_TRUE(parsed.ok());
  Table table = parsed.value();
  table.set_description("city statistics");

  SketchOptions sopt;
  sopt.num_perm = 8;
  TableSketch sketch = BuildTableSketch(table, sopt);
  EXPECT_EQ(sketch.columns.size(), 3u);
  EXPECT_EQ(sketch.columns[1].type, ColumnType::kInteger);
  EXPECT_EQ(sketch.columns[2].type, ColumnType::kDate);

  text::Vocab vocab =
      lakebench::BuildVocabFromTables({table}, /*include_cells=*/false);
  core::TabSketchFMConfig config;
  config.encoder.hidden = 16;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 32;
  config.vocab_size = vocab.size();
  config.num_perm = 8;
  Rng rng(5);
  core::TabSketchFM model(config, &rng);
  text::Tokenizer tokenizer(&vocab);
  core::InputEncoder input_encoder(&config, &tokenizer);
  core::Embedder embedder(&model, &input_encoder);

  auto table_emb = embedder.TableEmbedding(sketch);
  EXPECT_EQ(table_emb.size(), 16u);
  auto col_embs = embedder.ColumnEmbeddings(sketch);
  EXPECT_EQ(col_embs.size(), 3u);
}

}  // namespace
}  // namespace tsfm
