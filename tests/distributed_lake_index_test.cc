// DistributedLakeIndex end-to-end suite: a coordinator over real
// lake_shard_worker *processes* must return results bit-identical to the
// in-process ShardedLakeIndex over the same shard files (flat backend, so
// byte-for-byte), and every coordinator fault path — worker killed
// mid-serving, worker never started, stale socket path, mixed-version
// handshake, silent (wedged) worker — must end in a Status error naming
// the shard, never a hang or a crash.
//
// Workers are forked via ShardWorkerFleet. Forking must precede any
// thread creation in this process, so every test spawns its fleet before
// building thread pools, coordinators, or servers.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "search/sharded_lake_index.h"
#include "server/distributed_lake_index.h"
#include "server/lake_client.h"
#include "server/lake_server.h"
#include "server/protocol.h"
#include "server/shard_worker.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tsfm::server {
namespace {

using search::IndexOptions;
using search::ShardedLakeIndex;

constexpr size_t kDim = 16;

std::vector<float> RandomVec(size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Normal());
  return v;
}

struct Corpus {
  std::vector<std::string> ids;
  std::vector<std::vector<std::vector<float>>> tables;
  std::vector<std::vector<float>> join_queries;
  std::vector<std::vector<std::vector<float>>> union_queries;
};

Corpus MakeCorpus(size_t num_tables, uint64_t seed) {
  Corpus corpus;
  Rng rng(seed);
  for (size_t t = 0; t < num_tables; ++t) {
    corpus.ids.push_back("table_" + std::to_string(t));
    std::vector<std::vector<float>> cols(1 + t % 3);
    for (auto& col : cols) col = RandomVec(kDim, &rng);
    corpus.tables.push_back(std::move(cols));
  }
  for (size_t q = 0; q < 10; ++q) {
    corpus.join_queries.push_back(RandomVec(kDim, &rng));
    corpus.union_queries.push_back({RandomVec(kDim, &rng), RandomVec(kDim, &rng)});
  }
  return corpus;
}

ShardedLakeIndex BuildIndex(const Corpus& corpus, size_t shards) {
  ShardedLakeIndex index(kDim, shards, IndexOptions{});
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  return index;
}

std::string UniqueName(const char* prefix) {
  static std::atomic<int> counter{0};
  return std::string(prefix) + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

/// Saves a sharded lake and spawns a ShardWorkerFleet over it; the fleet
/// (one forked worker process per shard) cleans up on destruction.
class WorkerFleet {
 public:
  // Spawn before creating any threads in the test process.
  void Start(const ShardedLakeIndex& index) {
    manifest_path_ = testing::TempDir() + "/" + UniqueName("tsfm_dist_") +
                     ".laks";
    ASSERT_TRUE(index.Save(manifest_path_).ok());
    auto fleet = ShardWorkerFleet::Spawn(
        manifest_path_, "/tmp/" + UniqueName("tsfm_dw_"));
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    fleet_ = std::move(fleet).value();
  }

  // SIGKILL one worker (simulating a crash) so the test can assert against
  // a genuinely dead process, not a dying one.
  void KillWorker(size_t shard) { fleet_.KillWorker(shard); }

  const std::string& manifest_path() const { return manifest_path_; }
  const std::vector<std::string>& sockets() const { return fleet_.sockets(); }

 private:
  std::string manifest_path_;
  ShardWorkerFleet fleet_;  // empty until Start
};

// ------------------------------------------------------------------ parity

class DistributedParityTest : public testing::TestWithParam<size_t> {};

TEST_P(DistributedParityTest, BitIdenticalToInProcessShardedIndex) {
  const size_t workers = GetParam();
  Corpus corpus = MakeCorpus(60, 7 + workers);
  ShardedLakeIndex reference = BuildIndex(corpus, workers);
  WorkerFleet fleet;
  fleet.Start(reference);

  auto coordinator =
      DistributedLakeIndex::Connect(fleet.manifest_path(), fleet.sockets());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  const DistributedLakeIndex& dist = coordinator.value();
  EXPECT_EQ(dist.num_shards(), workers);
  EXPECT_EQ(dist.num_tables(), reference.num_tables());
  EXPECT_EQ(dist.num_columns(), reference.num_columns());

  // Handles and ids must line up exactly — they drive the tie-breaking.
  for (size_t h = 0; h < reference.num_tables(); ++h) {
    ASSERT_EQ(dist.table_id(h), reference.table_id(h));
  }

  for (size_t k : {size_t{1}, size_t{5}, size_t{100}}) {
    for (const auto& q : corpus.join_queries) {
      auto got = dist.QueryJoinable(q, k);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value(), reference.QueryJoinable(q, k));
    }
    for (const auto& q : corpus.union_queries) {
      auto got = dist.QueryUnionable(q, k);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value(), reference.QueryUnionable(q, k));
    }
  }

  // Degenerate shapes must match the in-process answers too.
  auto zero_k = dist.QueryJoinable(corpus.join_queries[0], 0);
  ASSERT_TRUE(zero_k.ok());
  EXPECT_EQ(zero_k.value(), reference.QueryJoinable(corpus.join_queries[0], 0));
  auto no_columns = dist.QueryUnionable({}, 5);
  ASSERT_TRUE(no_columns.ok());
  EXPECT_EQ(no_columns.value(), reference.QueryUnionable({}, 5));

  // Workers count the SHARD_QUERY traffic they served: every coordinator
  // query above scattered one frame per worker, so the fleet aggregate
  // must reflect real work, not zeros.
  auto stats = dist.AggregateStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().requests, 3u * corpus.join_queries.size() +
                                        3u * corpus.union_queries.size());
  auto health = dist.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  ASSERT_EQ(health.value().size(), workers);
  uint64_t total_tables = 0;
  for (const ShardHealth& h : health.value()) total_tables += h.num_tables;
  EXPECT_EQ(total_tables, reference.num_tables());
}

TEST_P(DistributedParityTest, BatchEntryPointsMatchWithAndWithoutPool) {
  const size_t workers = GetParam();
  Corpus corpus = MakeCorpus(50, 30 + workers);
  ShardedLakeIndex reference = BuildIndex(corpus, workers);
  WorkerFleet fleet;
  fleet.Start(reference);

  auto coordinator =
      DistributedLakeIndex::Connect(fleet.manifest_path(), fleet.sockets());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  ThreadPool pool(4);

  const size_t k = 7;
  auto expect_join = reference.QueryJoinableBatch(corpus.join_queries, k);
  auto expect_union = reference.QueryUnionableBatch(corpus.union_queries, k);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    auto join = coordinator.value().QueryJoinableBatch(corpus.join_queries, k, p);
    ASSERT_TRUE(join.ok()) << join.status().ToString();
    EXPECT_EQ(join.value(), expect_join);
    auto got_union =
        coordinator.value().QueryUnionableBatch(corpus.union_queries, k, p);
    ASSERT_TRUE(got_union.ok()) << got_union.status().ToString();
    EXPECT_EQ(got_union.value(), expect_union);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DistributedParityTest,
                         testing::Values(1, 2, 4));

// A LakeServer fronting the coordinator must be indistinguishable from one
// fronting the index in-process — same socket protocol, same results.
TEST(DistributedServerTest, PublicServerOverCoordinatorMatchesInProcess) {
  Corpus corpus = MakeCorpus(40, 99);
  ShardedLakeIndex reference = BuildIndex(corpus, 2);
  WorkerFleet fleet;
  fleet.Start(reference);

  auto coordinator =
      DistributedLakeIndex::Connect(fleet.manifest_path(), fleet.sockets());
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  LakeServer lake_server(std::move(coordinator).value());
  const std::string socket_path = "/tmp/" + UniqueName("tsfm_dsrv_") + ".sock";
  ASSERT_TRUE(lake_server.Start(socket_path).ok());

  LakeClient client;
  ASSERT_TRUE(client.Connect(socket_path).ok());
  for (const auto& q : corpus.join_queries) {
    auto got = client.QueryJoinable(q, 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), reference.QueryJoinable(q, 5));
  }
  for (const auto& q : corpus.union_queries) {
    auto got = client.QueryUnionable(q, 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), reference.QueryUnionable(q, 5));
  }

  // A coordinator-backed server is not itself a shard: SHARD_QUERY is
  // rejected, not forwarded into a two-level scatter.
  auto hits = client.ShardQuery({corpus.join_queries[0]}, 5);
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kUnimplemented);

  // HEALTH still answers (it describes the whole distributed lake).
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().num_tables, reference.num_tables());

  lake_server.Stop();
  ::unlink(socket_path.c_str());
}

// ------------------------------------------------------------ fault paths

TEST(DistributedFaultTest, KilledWorkerYieldsStatusNamingTheShardNotAHang) {
  Corpus corpus = MakeCorpus(45, 123);
  ShardedLakeIndex reference = BuildIndex(corpus, 3);
  WorkerFleet fleet;
  fleet.Start(reference);

  DistributedOptions options;
  options.shard_timeout_ms = 2000;
  auto coordinator = DistributedLakeIndex::Connect(fleet.manifest_path(),
                                                   fleet.sockets(), options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  // Warm the connection pool so the failure exercises the stale-connection
  // retry path, then crash shard 1 outright.
  auto warm = coordinator.value().QueryJoinable(corpus.join_queries[0], 5);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm.value(), reference.QueryJoinable(corpus.join_queries[0], 5));
  fleet.KillWorker(1);

  const auto start = std::chrono::steady_clock::now();
  auto got = coordinator.value().QueryJoinable(corpus.join_queries[1], 5);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("shard 1"), std::string::npos)
      << got.status().ToString();
  // Not a hang: the dead worker's socket refuses immediately, and even the
  // timeout bound (2 attempts x 2 s) is far below this ceiling.
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  // Batches fail closed with the same shard-naming error.
  auto batch = coordinator.value().QueryJoinableBatch(corpus.join_queries, 5);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("shard 1"), std::string::npos);
}

TEST(DistributedFaultTest, WorkerNeverStartedFailsTheHandshakeNamingTheShard) {
  Corpus corpus = MakeCorpus(30, 77);
  ShardedLakeIndex reference = BuildIndex(corpus, 2);
  WorkerFleet fleet;
  fleet.Start(reference);

  // Shard 1's socket path was never bound by anyone.
  std::vector<std::string> sockets = fleet.sockets();
  sockets[1] = "/tmp/" + UniqueName("tsfm_missing_") + ".sock";
  auto coordinator =
      DistributedLakeIndex::Connect(fleet.manifest_path(), sockets);
  ASSERT_FALSE(coordinator.ok());
  EXPECT_NE(coordinator.status().message().find("shard 1"), std::string::npos)
      << coordinator.status().ToString();
}

TEST(DistributedFaultTest, StaleSocketPathFailsTheHandshakeNamingTheShard) {
  Corpus corpus = MakeCorpus(30, 78);
  ShardedLakeIndex reference = BuildIndex(corpus, 2);
  WorkerFleet fleet;
  fleet.Start(reference);

  // A socket file left behind by a dead server: bound once, listener gone.
  const std::string stale = "/tmp/" + UniqueName("tsfm_stale_") + ".sock";
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, stale.c_str(), stale.size() + 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(fd);  // path remains on disk; nobody will ever accept

  std::vector<std::string> sockets = fleet.sockets();
  sockets[0] = stale;
  auto coordinator =
      DistributedLakeIndex::Connect(fleet.manifest_path(), sockets);
  ASSERT_FALSE(coordinator.ok());
  EXPECT_NE(coordinator.status().message().find("shard 0"), std::string::npos)
      << coordinator.status().ToString();
  ::unlink(stale.c_str());
}

// A minimal fake worker: accepts connections and answers every request
// with a fixed response payload (or silence), for handshake-rejection and
// timeout tests that need a live-but-wrong peer.
class FakeWorker {
 public:
  // `respond` maps the decoded request to a response; returning false means
  // "stay silent" (hold the connection open without answering).
  explicit FakeWorker(std::function<bool(const Request&, Response*)> respond)
      : respond_(std::move(respond)) {
    socket_path_ = "/tmp/" + UniqueName("tsfm_fake_") + ".sock";
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(listen_fd_, 8);
    thread_ = std::thread([this] { Loop(); });
  }

  ~FakeWorker() {
    stop_.store(true);
    thread_.join();
    ::close(listen_fd_);
    for (int fd : held_) ::close(fd);
    ::unlink(socket_path_.c_str());
  }

  const std::string& socket_path() const { return socket_path_; }

 private:
  void Loop() {
    while (!stop_.load()) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 20) <= 0) continue;
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      // A client that connects but never writes must not wedge this loop
      // (and with it the test teardown's join).
      timeval read_timeout{/*tv_sec=*/0, /*tv_usec=*/500000};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &read_timeout,
                   sizeof(read_timeout));
      std::string payload;
      bool clean_eof = false;
      if (!ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok() ||
          clean_eof) {
        ::close(fd);
        continue;
      }
      std::istringstream in(payload);
      Request request;
      Response response;
      if (!DecodeRequest(in, &request).ok() || !respond_(request, &response)) {
        held_.push_back(fd);  // stay silent; close at teardown
        continue;
      }
      // Ignorable: the fake worker answers best-effort; a coordinator that
      // hung up early is exactly one of the failure modes under test.
      (void)WriteFrame(fd, SerializeResponse(response));
      ::close(fd);
    }
  }

  std::function<bool(const Request&, Response*)> respond_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::vector<int> held_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(DistributedFaultTest, MixedVersionHandshakeIsRejectedNamingTheShard) {
  Corpus corpus = MakeCorpus(30, 79);
  ShardedLakeIndex reference = BuildIndex(corpus, 1);
  WorkerFleet fleet;
  fleet.Start(reference);

  // The fake worker decodes fine but claims a future protocol version in
  // its HEALTH payload — the coordinator must refuse to serve over it.
  FakeWorker fake([&](const Request& request, Response* response) {
    response->version = RequiredVersion(request.op);
    response->op = request.op;
    response->health.protocol_version = kProtocolVersion + 1;
    response->health.backend = 0;
    response->health.metric = 0;
    response->health.dim = kDim;
    response->health.num_tables = reference.num_tables();
    response->health.num_columns = reference.num_columns();
    return true;
  });

  auto coordinator = DistributedLakeIndex::Connect(fleet.manifest_path(),
                                                   {fake.socket_path()});
  ASSERT_FALSE(coordinator.ok());
  EXPECT_EQ(coordinator.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(coordinator.status().message().find("shard 0"), std::string::npos);
  EXPECT_NE(coordinator.status().message().find("protocol version"),
            std::string::npos)
      << coordinator.status().ToString();
}

TEST(DistributedFaultTest, SilentWorkerTimesOutInsteadOfHangingForever) {
  Corpus corpus = MakeCorpus(30, 80);
  ShardedLakeIndex reference = BuildIndex(corpus, 1);
  WorkerFleet fleet;
  fleet.Start(reference);

  // Accepts, reads the request, never answers: only the per-shard timeout
  // can save the coordinator here.
  FakeWorker silent([](const Request&, Response*) { return false; });

  DistributedOptions options;
  options.shard_timeout_ms = 200;
  const auto start = std::chrono::steady_clock::now();
  auto coordinator = DistributedLakeIndex::Connect(
      fleet.manifest_path(), {silent.socket_path()}, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(coordinator.ok());
  EXPECT_NE(coordinator.status().message().find("shard 0"), std::string::npos);
  EXPECT_NE(coordinator.status().message().find("timed out"),
            std::string::npos)
      << coordinator.status().ToString();
  // Two attempts x 200 ms plus slack; anything near the 10 s mark would
  // mean the timeout is not actually bounding the round trip.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

}  // namespace
}  // namespace tsfm::server
