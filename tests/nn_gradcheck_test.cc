// Gradient checks: every op's analytic gradient is compared with central
// differences on random inputs. A max relative error under 2e-2 at
// epsilon=1e-2 (float32) is a pass; broken backward passes show errors
// near 1.0.
#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/ops.h"
#include "util/random.h"

namespace tsfm::nn {
namespace {

constexpr double kTol = 2e-2;
constexpr float kEps = 1e-2f;

Var RandomLeaf(size_t r, size_t c, Rng* rng, bool grad = true) {
  Tensor t(r, c);
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->UniformDouble(-1.0, 1.0));
  }
  return MakeLeaf(std::move(t), grad);
}

TEST(GradCheck, MatMulLeft) {
  Rng rng(1);
  Var a = RandomLeaf(3, 4, &rng);
  Var b = RandomLeaf(4, 5, &rng, /*grad=*/false);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(MatMul(a, b)); }, kEps), kTol);
}

TEST(GradCheck, MatMulRight) {
  Rng rng(2);
  Var a = RandomLeaf(3, 4, &rng, /*grad=*/false);
  Var b = RandomLeaf(4, 5, &rng);
  EXPECT_LT(MaxGradError(b, [&] { return SumAll(MatMul(a, b)); }, kEps), kTol);
}

TEST(GradCheck, MatMulNTBothSides) {
  Rng rng(3);
  Var a = RandomLeaf(3, 4, &rng);
  Var b = RandomLeaf(5, 4, &rng);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(MatMulNT(a, b)); }, kEps), kTol);
  EXPECT_LT(MaxGradError(b, [&] { return SumAll(MatMulNT(a, b)); }, kEps), kTol);
}

TEST(GradCheck, AddAndSub) {
  Rng rng(4);
  Var a = RandomLeaf(2, 3, &rng);
  Var b = RandomLeaf(2, 3, &rng);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(Add(a, b)); }, kEps), kTol);
  EXPECT_LT(MaxGradError(b, [&] { return SumAll(Sub(a, b)); }, kEps), kTol);
}

TEST(GradCheck, AddRowBias) {
  Rng rng(5);
  Var x = RandomLeaf(4, 3, &rng);
  Var b = RandomLeaf(1, 3, &rng);
  // Weighted sum so row contributions differ.
  Var w = RandomLeaf(3, 1, &rng, /*grad=*/false);
  EXPECT_LT(MaxGradError(b, [&] { return SumAll(MatMul(AddRow(x, b), w)); }, kEps),
            kTol);
  EXPECT_LT(MaxGradError(x, [&] { return SumAll(MatMul(AddRow(x, b), w)); }, kEps),
            kTol);
}

TEST(GradCheck, MulElementwise) {
  Rng rng(6);
  Var a = RandomLeaf(3, 3, &rng);
  Var b = RandomLeaf(3, 3, &rng);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(Mul(a, b)); }, kEps), kTol);
}

TEST(GradCheck, ScaleOp) {
  Rng rng(7);
  Var a = RandomLeaf(2, 4, &rng);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(Scale(a, -2.5f)); }, kEps), kTol);
}

TEST(GradCheck, GeluActivation) {
  Rng rng(8);
  Var a = RandomLeaf(3, 4, &rng);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(Gelu(a)); }, kEps), kTol);
}

TEST(GradCheck, ReluActivation) {
  Rng rng(9);
  // Keep inputs away from the kink at 0.
  Tensor t(2, 4);
  for (size_t i = 0; i < t.size(); ++i) t[i] = (i % 2 == 0) ? 0.8f : -0.7f;
  Var a = MakeLeaf(std::move(t), true);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(Relu(a)); }, 1e-3f), kTol);
}

TEST(GradCheck, TanhActivation) {
  Rng rng(10);
  Var a = RandomLeaf(2, 5, &rng);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(Tanh(a)); }, kEps), kTol);
}

TEST(GradCheck, SoftmaxRows) {
  Rng rng(11);
  Var a = RandomLeaf(3, 5, &rng);
  Var w = RandomLeaf(5, 1, &rng, /*grad=*/false);
  EXPECT_LT(MaxGradError(a, [&] { return SumAll(MatMul(Softmax(a), w)); }, kEps),
            kTol);
}

TEST(GradCheck, LayerNormAllInputs) {
  Rng rng(12);
  Var x = RandomLeaf(3, 6, &rng);
  Var gamma = RandomLeaf(1, 6, &rng);
  Var beta = RandomLeaf(1, 6, &rng);
  Var w = RandomLeaf(6, 1, &rng, /*grad=*/false);
  auto loss = [&] { return SumAll(MatMul(LayerNorm(x, gamma, beta), w)); };
  EXPECT_LT(MaxGradError(x, loss, kEps), kTol);
  EXPECT_LT(MaxGradError(gamma, loss, kEps), kTol);
  EXPECT_LT(MaxGradError(beta, loss, kEps), kTol);
}

TEST(GradCheck, EmbeddingScatter) {
  Rng rng(13);
  Var weight = RandomLeaf(7, 4, &rng);
  std::vector<int> ids = {3, 0, 3, 6};  // repeated id accumulates
  Var w = RandomLeaf(4, 1, &rng, /*grad=*/false);
  EXPECT_LT(MaxGradError(
                weight, [&] { return SumAll(MatMul(EmbeddingLookup(weight, ids), w)); },
                kEps),
            kTol);
}

TEST(GradCheck, SliceAndConcatCols) {
  Rng rng(14);
  Var x = RandomLeaf(3, 6, &rng);
  auto loss = [&] {
    Var left = SliceCols(x, 0, 3);
    Var right = SliceCols(x, 3, 3);
    return SumAll(Mul(ConcatCols({right, left}), ConcatCols({left, right})));
  };
  EXPECT_LT(MaxGradError(x, loss, kEps), kTol);
}

TEST(GradCheck, SelectRowOp) {
  Rng rng(15);
  Var x = RandomLeaf(4, 3, &rng);
  Var w = RandomLeaf(3, 1, &rng, /*grad=*/false);
  EXPECT_LT(
      MaxGradError(x, [&] { return SumAll(MatMul(SelectRow(x, 2), w)); }, kEps),
      kTol);
}

TEST(GradCheck, MeanRowsAndMeanAll) {
  Rng rng(16);
  Var x = RandomLeaf(4, 3, &rng);
  Var w = RandomLeaf(3, 1, &rng, /*grad=*/false);
  EXPECT_LT(MaxGradError(x, [&] { return SumAll(MatMul(MeanRows(x), w)); }, kEps),
            kTol);
  EXPECT_LT(MaxGradError(x, [&] { return MeanAll(Mul(x, x)); }, kEps), kTol);
}

TEST(GradCheck, CrossEntropyWithIgnoreIndex) {
  Rng rng(17);
  Var logits = RandomLeaf(4, 5, &rng);
  std::vector<int> targets = {2, -100, 0, 4};
  EXPECT_LT(
      MaxGradError(logits, [&] { return CrossEntropyLoss(logits, targets); }, kEps),
      kTol);
}

TEST(GradCheck, MseLossGradient) {
  Rng rng(18);
  Var pred = RandomLeaf(3, 2, &rng);
  std::vector<float> targets = {0.1f, -0.5f, 0.7f, 0.2f, -0.9f, 0.4f};
  EXPECT_LT(MaxGradError(pred, [&] { return MseLoss(pred, targets); }, kEps), kTol);
}

TEST(GradCheck, BceWithLogitsGradient) {
  Rng rng(19);
  Var logits = RandomLeaf(2, 3, &rng);
  std::vector<float> targets = {1, 0, 1, 0, 0, 1};
  EXPECT_LT(
      MaxGradError(logits, [&] { return BceWithLogitsLoss(logits, targets); }, kEps),
      kTol);
}

// A composite expression resembling one transformer sub-block.
TEST(GradCheck, ComposedAttentionLikeBlock) {
  Rng rng(20);
  Var x = RandomLeaf(4, 6, &rng);
  Var wq = RandomLeaf(6, 6, &rng);
  Var gamma = RandomLeaf(1, 6, &rng, /*grad=*/false);
  Var beta = RandomLeaf(1, 6, &rng, /*grad=*/false);
  auto loss = [&] {
    Var q = MatMul(x, wq);
    Var scores = Scale(MatMulNT(q, q), 0.4f);
    Var ctx = MatMul(Softmax(scores), q);
    Var res = LayerNorm(Add(x, ctx), gamma, beta);
    return MeanAll(Mul(res, res));
  };
  // Composed float32 chains accumulate slightly more rounding error than a
  // single op; allow 3e-2 here (broken gradients show errors near 1).
  EXPECT_LT(MaxGradError(wq, loss, kEps), 3e-2);
  EXPECT_LT(MaxGradError(x, loss, kEps), 3e-2);
}

// Parameterized shape sweep for the workhorse op.
class MatMulShapeTest
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, GradientHoldsAcrossShapes) {
  auto [m, k, n] = GetParam();
  Rng rng(100 + m * 7 + k * 3 + n);
  Var a = RandomLeaf(m, k, &rng);
  Var b = RandomLeaf(k, n, &rng);
  auto loss = [&] { return SumAll(Mul(MatMul(a, b), MatMul(a, b))); };
  EXPECT_LT(MaxGradError(a, loss, kEps), kTol);
  EXPECT_LT(MaxGradError(b, loss, kEps), kTol);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapeTest,
                         testing::Values(std::make_tuple(1, 1, 1),
                                         std::make_tuple(1, 4, 2),
                                         std::make_tuple(3, 1, 3),
                                         std::make_tuple(2, 5, 2),
                                         std::make_tuple(4, 4, 4)));

}  // namespace
}  // namespace tsfm::nn
