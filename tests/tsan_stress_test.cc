// Concurrency stress scenarios for the TSan CI leg (also run, more
// gently, in the plain suites). Each test hammers one documented
// contract from docs/architecture.md's concurrency section:
//
//   * queries racing live ingest, deletes and Compact on a
//     ShardedLakeIndex (epoch pinning: a query must always see a
//     consistent shard set + handle maps),
//   * LakeServer::Stop() racing a client burst (drain semantics), and
//   * QueryBatcher::Stop() racing submitters (accepted-before-Stop
//     queries all get answers).
//
// Iteration counts are fixed, not wall-time based, so a TSan build (at
// its ~10x slowdown) still finishes in seconds. The assertions are
// deliberately weak — the race detector is the real oracle here; the
// EXPECTs only pin liveness and the never-partial-result contracts.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "search/sharded_lake_index.h"
#include "server/backend.h"
#include "server/batcher.h"
#include "server/lake_client.h"
#include "server/lake_server.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace tsfm::server {
namespace {

using search::IndexOptions;
using search::ShardedLakeIndex;
using testutil::Corpus;
using testutil::MakeCorpus;

constexpr size_t kDim = 8;

ShardedLakeIndex BuildIndex(const Corpus& corpus, size_t shards) {
  ShardedLakeIndex index(kDim, shards, IndexOptions{});
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  index.Seal();
  return index;
}

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/tsfm_tsan_stress_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// Queries scatter over a pool (exercising ParallelFor under the shared
// epoch lock) while one thread churns tables and another compacts. Every
// query must return a well-formed result from SOME epoch: k ids, no
// duplicates, never a torn map (which would show up as a crash, a TSan
// report, or an id from a tombstoned-then-reused handle).
TEST(TsanStressTest, QueriesRaceIngestDeletesAndCompact) {
  const Corpus corpus = MakeCorpus(40, kDim, 11);
  ShardedLakeIndex index = BuildIndex(corpus, /*shards=*/3);
  ThreadPool query_pool(4);

  constexpr int kQueryIters = 60;
  constexpr int kChurnIters = 40;
  constexpr int kCompactIters = 12;

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kQueryIters; ++i) {
        const auto& q = corpus.join_queries[(t + i) % corpus.join_queries.size()];
        auto ids = index.QueryJoinable(q, 5, &query_pool);
        if (ids.size() > 5) failed.store(true);
        auto united = index.QueryUnionable(
            corpus.union_queries[i % corpus.union_queries.size()], 3);
        if (united.size() > 3) failed.store(true);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kChurnIters; ++i) {
      const std::string id = "churn_" + std::to_string(i);
      index.AddTable(id, corpus.tables[i % corpus.tables.size()]);
      if (i % 2 == 1) {
        // Tombstone the table added two rounds ago; it must exist.
        Status removed = index.RemoveTable("churn_" + std::to_string(i - 1));
        if (!removed.ok()) failed.store(true);
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < kCompactIters; ++i) {
      Status compacted = index.Compact(/*hnsw_rebuild_threshold=*/0.0,
                                       &query_pool);
      if (!compacted.ok()) failed.store(true);
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());

  // The dust settles into a consistent lake: one final compact folds the
  // surviving churn and the counters agree with what the threads did.
  ASSERT_TRUE(index.Compact().ok());
  EXPECT_FALSE(index.churned());
  EXPECT_EQ(index.num_tables(), index.num_live_tables());
}

// Stop() racing a client burst: accepted requests drain (each client sees
// either a correct reply or a clean connection error — never a hang, never
// a torn frame), and the server object tears down while handlers are still
// mid-request.
TEST(TsanStressTest, ServerStopDuringClientBurst) {
  const Corpus corpus = MakeCorpus(30, kDim, 23);
  ServerOptions options;
  options.io_threads = 4;
  options.query_threads = 2;
  auto server = std::make_unique<LakeServer>(BuildIndex(corpus, /*shards=*/2),
                                             options);
  const std::string socket_path = UniqueSocketPath();
  ASSERT_TRUE(server->Start(socket_path).ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> answered{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        LakeClient client;
        if (!client.Connect(socket_path).ok()) {
          // The server is already down; every later attempt will fail too.
          rejected.fetch_add(1);
          continue;
        }
        auto got = client.QueryJoinable(
            corpus.join_queries[(c + i) % corpus.join_queries.size()], 5);
        if (got.ok()) {
          answered.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  // Let the burst get going, then pull the plug mid-flight.
  while (answered.load() == 0 && rejected.load() == 0) {
    std::this_thread::yield();
  }
  server->Stop();
  EXPECT_FALSE(server->running());
  for (auto& th : clients) th.join();
  server.reset();
  ::unlink(socket_path.c_str());
  EXPECT_EQ(answered.load() + rejected.load(), kClients * kRequestsPerClient);
}

// Batcher Stop() racing submitters: every Submit returns (an answer or a
// clean shutdown rejection), and Stop never strands an accepted query.
TEST(TsanStressTest, BatcherStopDuringSubmitBurst) {
  const Corpus corpus = MakeCorpus(30, kDim, 31);
  InProcessBackend backend(BuildIndex(corpus, /*shards=*/2));
  ThreadPool pool(3);
  QueryBatcher batcher(&backend, &pool, /*max_batch=*/4);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 30;
  std::atomic<int> answered{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto got = batcher.Submit(
            Opcode::kJoin,
            {corpus.join_queries[(t + i) % corpus.join_queries.size()]}, 5);
        if (got.ok()) {
          answered.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  while (answered.load() == 0) std::this_thread::yield();
  batcher.Stop();
  for (auto& th : submitters) th.join();
  EXPECT_EQ(answered.load() + rejected.load(), kSubmitters * kPerThread);
  EXPECT_GT(answered.load(), 0);
}

// ThreadPool Shutdown() racing Submit and a concurrent ParallelFor: the
// never-drop-work contract means accepted == executed and the ParallelFor
// range is covered exactly once even if the pool dies under it.
TEST(TsanStressTest, PoolShutdownRacesSubmitAndParallelFor) {
  for (int round = 0; round < 8; ++round) {
    auto pool = std::make_unique<ThreadPool>(3);
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    std::vector<std::atomic<int>> touched(64);
    std::thread submitter([&] {
      for (int i = 0; i < 200; ++i) {
        if (pool->Submit([&executed] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
    std::thread looper([&] {
      ParallelFor(pool.get(), 0, touched.size(),
                  [&](size_t i) { touched[i].fetch_add(1); });
    });
    pool->Shutdown();
    submitter.join();
    looper.join();
    EXPECT_EQ(accepted.load(), executed.load());
    for (auto& t : touched) EXPECT_EQ(t.load(), 1);
  }
}

}  // namespace
}  // namespace tsfm::server
