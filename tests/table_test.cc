#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/stats.h"
#include "table/table.h"
#include "table/value.h"

namespace tsfm {
namespace {

// ------------------------------------------------------------- Value parse

TEST(ValueTest, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt(" 13 ").value(), 13);
  EXPECT_FALSE(ParseInt("12.5").has_value());
  EXPECT_FALSE(ParseInt("12a").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
}

TEST(ValueTest, ParseFloatStrict) {
  EXPECT_DOUBLE_EQ(ParseFloat("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseFloat("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(ParseFloat("1e3").value(), 1000.0);
  EXPECT_FALSE(ParseFloat("abc").has_value());
  EXPECT_FALSE(ParseFloat("1.2x").has_value());
}

TEST(ValueTest, ParseIsoDate) {
  // 1970-01-01 is day 0.
  EXPECT_EQ(ParseDateToDays("1970-01-01").value(), 0);
  EXPECT_EQ(ParseDateToDays("1970-01-02").value(), 1);
  EXPECT_EQ(ParseDateToDays("1969-12-31").value(), -1);
  // Known: 2000-03-01 is day 11017.
  EXPECT_EQ(ParseDateToDays("2000-03-01").value(), 11017);
}

TEST(ValueTest, ParseSlashDates) {
  EXPECT_EQ(ParseDateToDays("1970/01/02").value(), 1);
  // DD/MM/YYYY.
  EXPECT_EQ(ParseDateToDays("02/01/1970").value(), 1);
}

TEST(ValueTest, RejectsBadDates) {
  EXPECT_FALSE(ParseDateToDays("2020-13-01").has_value());
  EXPECT_FALSE(ParseDateToDays("2020-02-30").has_value());
  EXPECT_FALSE(ParseDateToDays("hello").has_value());
  EXPECT_FALSE(ParseDateToDays("1-2").has_value());
}

TEST(ValueTest, LeapYearHandling) {
  EXPECT_TRUE(ParseDateToDays("2020-02-29").has_value());
  EXPECT_FALSE(ParseDateToDays("2021-02-29").has_value());
  EXPECT_TRUE(ParseDateToDays("2000-02-29").has_value());   // div by 400
  EXPECT_FALSE(ParseDateToDays("1900-02-29").has_value());  // div by 100
}

TEST(ValueTest, NullTokens) {
  EXPECT_TRUE(IsNullToken(""));
  EXPECT_TRUE(IsNullToken("  "));
  EXPECT_TRUE(IsNullToken("NaN"));
  EXPECT_TRUE(IsNullToken("null"));
  EXPECT_TRUE(IsNullToken("N/A"));
  EXPECT_TRUE(IsNullToken("-"));
  EXPECT_FALSE(IsNullToken("0"));
  EXPECT_FALSE(IsNullToken("nothing"));
}

TEST(ValueTest, NumericValueByType) {
  EXPECT_DOUBLE_EQ(NumericValue("42", ColumnType::kInteger).value(), 42.0);
  EXPECT_DOUBLE_EQ(NumericValue("2.5", ColumnType::kFloat).value(), 2.5);
  EXPECT_DOUBLE_EQ(NumericValue("1970-01-02", ColumnType::kDate).value(), 1.0);
  EXPECT_FALSE(NumericValue("abc", ColumnType::kString).has_value());
  EXPECT_FALSE(NumericValue("", ColumnType::kFloat).has_value());
}

// -------------------------------------------------------- Type inference

TEST(TypeInferenceTest, DetectsEachType) {
  EXPECT_EQ(InferColumnType({"1", "2", "3"}), ColumnType::kInteger);
  EXPECT_EQ(InferColumnType({"1.5", "2.25"}), ColumnType::kFloat);
  EXPECT_EQ(InferColumnType({"2020-01-01", "2021-06-15"}), ColumnType::kDate);
  EXPECT_EQ(InferColumnType({"apple", "pear"}), ColumnType::kString);
}

TEST(TypeInferenceTest, IntegersParseAsFloatButPreferInt) {
  EXPECT_EQ(InferColumnType({"10", "20"}), ColumnType::kInteger);
}

TEST(TypeInferenceTest, MixedFallsBackToString) {
  EXPECT_EQ(InferColumnType({"1", "apple"}), ColumnType::kString);
}

TEST(TypeInferenceTest, NullsAreSkipped) {
  EXPECT_EQ(InferColumnType({"", "NaN", "7", "8"}), ColumnType::kInteger);
  EXPECT_EQ(InferColumnType({"", ""}), ColumnType::kString);
}

TEST(TypeInferenceTest, ProbesOnlyFirstValues) {
  // First 10 are ints; an 11th bad value must not change the verdict.
  std::vector<std::string> cells;
  for (int i = 0; i < 10; ++i) cells.push_back(std::to_string(i));
  cells.push_back("oops");
  EXPECT_EQ(InferColumnType(cells, 10), ColumnType::kInteger);
}

// ------------------------------------------------------------------ Table

Table MakeToyTable() {
  Table t("toy", "a toy table");
  t.AddColumn("name", {"ann", "bob", "cy"});
  t.AddColumn("age", {"34", "28", "45"});
  t.AddColumn("city", {"oslo", "rome", "kiev"});
  t.InferTypes();
  return t;
}

TEST(TableTest, BasicAccessors) {
  Table t = MakeToyTable();
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.cell(1, 0), "bob");
  EXPECT_EQ(t.ColumnIndex("age"), 1);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.column(1).type, ColumnType::kInteger);
}

TEST(TableTest, RowString) {
  Table t = MakeToyTable();
  EXPECT_EQ(t.RowString(0), "ann 34 oslo");
}

TEST(TableTest, ColumnReorderIsContentPreserving) {
  Table t = MakeToyTable();
  Table r = t.WithColumnOrder({2, 0, 1});
  EXPECT_EQ(r.column(0).name, "city");
  EXPECT_EQ(r.column(1).name, "name");
  EXPECT_EQ(r.cell(0, 0), "oslo");
  EXPECT_EQ(r.num_rows(), 3u);
}

TEST(TableTest, RowReorder) {
  Table t = MakeToyTable();
  Table r = t.WithRowOrder({2, 1, 0});
  EXPECT_EQ(r.cell(0, 0), "cy");
  EXPECT_EQ(r.cell(2, 0), "ann");
}

TEST(TableTest, SliceRowsAndColumns) {
  Table t = MakeToyTable();
  Table s = t.Slice({0, 2}, {1});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.num_columns(), 1u);
  EXPECT_EQ(s.column(0).name, "age");
  EXPECT_EQ(s.cell(1, 0), "45");
}

TEST(TableTest, ValidateCatchesRaggedColumns) {
  Table t;
  t.AddColumn("a", {"1", "2"});
  t.AddColumn("b", {"1"});
  EXPECT_FALSE(t.Validate());
}

// ------------------------------------------------------------------ Stats

TEST(StatsTest, PercentileInterpolation) {
  std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.9), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(StatsTest, NumericColumnStats) {
  Column col;
  col.name = "x";
  col.type = ColumnType::kInteger;
  col.cells = {"1", "2", "3", "4", ""};
  ColumnStats s = ComputeColumnStats(col);
  EXPECT_TRUE(s.has_numeric);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.nan_fraction, 0.2, 1e-9);
  EXPECT_NEAR(s.unique_fraction, 0.8, 1e-9);
}

TEST(StatsTest, StringColumnStats) {
  Column col;
  col.name = "s";
  col.type = ColumnType::kString;
  col.cells = {"aa", "bbbb", "aa"};
  ColumnStats s = ComputeColumnStats(col);
  EXPECT_FALSE(s.has_numeric);
  EXPECT_NEAR(s.avg_cell_width, (2 + 4 + 2) / 3.0, 1e-9);
  EXPECT_NEAR(s.unique_fraction, 2.0 / 3.0, 1e-9);
}

TEST(StatsTest, EmptyColumn) {
  Column col;
  ColumnStats s = ComputeColumnStats(col);
  EXPECT_DOUBLE_EQ(s.unique_fraction, 0.0);
  EXPECT_FALSE(s.has_numeric);
}

// -------------------------------------------------------------------- CSV

TEST(CsvTest, ParsesSimple) {
  auto r = ParseCsv("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(r.ok());
  const Table& t = r.value();
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.cell(1, 1), "y");
  EXPECT_EQ(t.column(0).type, ColumnType::kInteger);
}

TEST(CsvTest, QuotedFieldsWithDelimsAndNewlines) {
  auto r = ParseCsv("a,b\n\"x,1\",\"line\nbreak\"\n\"he said \"\"hi\"\"\",z\n");
  ASSERT_TRUE(r.ok());
  const Table& t = r.value();
  EXPECT_EQ(t.cell(0, 0), "x,1");
  EXPECT_EQ(t.cell(0, 1), "line\nbreak");
  EXPECT_EQ(t.cell(1, 0), "he said \"hi\"");
}

TEST(CsvTest, ShortRowsPadded) {
  auto r = ParseCsv("a,b,c\n1,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cell(0, 2), "");
}

TEST(CsvTest, LongRowIsError) {
  auto r = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto r = ParseCsv("a,b\n\"oops,2\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, EmptyInputIsError) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, RoundTrip) {
  Table t("t", "d");
  t.AddColumn("col,1", {"a\"b", "plain"});
  t.AddColumn("col2", {"multi\nline", "x,y"});
  std::string csv = WriteCsv(t);
  auto r = ParseCsv(csv);
  ASSERT_TRUE(r.ok());
  const Table& u = r.value();
  EXPECT_EQ(u.column(0).name, "col,1");
  EXPECT_EQ(u.cell(0, 0), "a\"b");
  EXPECT_EQ(u.cell(0, 1), "multi\nline");
  EXPECT_EQ(u.cell(1, 1), "x,y");
}

TEST(CsvTest, CrLfHandled) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cell(0, 1), "2");
}

TEST(CsvTest, FileRoundTrip) {
  Table t("t", "d");
  t.AddColumn("x", {"1", "2"});
  std::string path = testing::TempDir() + "/tsfm_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
  EXPECT_FALSE(ReadCsvFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace tsfm
