// Property-style suites: parameterized sweeps over invariants that must
// hold for every input size / overlap / configuration, plus failure
// injection for contract violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <tuple>

#include "core/embedder.h"
#include "core/model.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "search/metrics.h"
#include "search/sharded_lake_index.h"
#include "search/stream_io.h"
#include "search/table_ranker.h"
#include "server/protocol.h"
#include "sketch/table_sketch.h"
#include "text/tokenizer.h"
#include "util/hash.h"
#include "util/random.h"

namespace tsfm {
namespace {

// ------------------------------------------------ 1-bit MinHash properties

class OneBitMinHashTest : public testing::TestWithParam<int> {};

TEST_P(OneBitMinHashTest, CosineTracksJaccard) {
  // cos(a, b) of 1-bit minhash vectors estimates J: matching slots
  // contribute +1, non-matching slots have independent bits (mean 0).
  const int overlap = GetParam();
  const int n = 100;
  Column a, b;
  a.type = b.type = ColumnType::kString;
  for (int i = 0; i < n; ++i) {
    a.cells.push_back("v" + std::to_string(i));
    b.cells.push_back("v" + std::to_string(i + n - overlap));
  }
  SketchOptions opt;
  opt.num_perm = 256;
  Table ta("a", ""), tb("b", "");
  ta.AddColumn(a.name, a.cells);
  tb.AddColumn(b.name, b.cells);
  ta.InferTypes();
  tb.InferTypes();
  TableSketch sa = BuildTableSketch(ta, opt);
  TableSketch sb = BuildTableSketch(tb, opt);
  auto va = sa.columns[0].OneBitMinHashInput();
  auto vb = sb.columns[0].OneBitMinHashInput();

  double dot = 0;
  for (size_t i = 0; i < va.size(); ++i) dot += va[i] * vb[i];
  double cosine = dot / static_cast<double>(va.size());

  double true_jaccard = static_cast<double>(overlap) / (2 * n - overlap);
  EXPECT_NEAR(cosine, true_jaccard, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Overlaps, OneBitMinHashTest,
                         testing::Values(0, 25, 50, 75, 100));

TEST(OneBitMinHashTest, ValuesAreSigns) {
  Column c;
  c.cells = {"x", "y", "z"};
  Table t("t", "");
  t.AddColumn("c", c.cells);
  t.InferTypes();
  TableSketch s = BuildTableSketch(t);
  for (float v : s.columns[0].OneBitMinHashInput()) {
    EXPECT_TRUE(v == 1.0f || v == -1.0f);
  }
}

// -------------------------------------------------- Model projections

TEST(ModelProjectionTest, LinearInInput) {
  core::TabSketchFMConfig config;
  config.encoder.hidden = 16;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 32;
  config.vocab_size = 30;
  config.num_perm = 8;
  Rng rng(1);
  core::TabSketchFM model(config, &rng);

  std::vector<float> zero(config.MinHashInputDim(), 0.0f);
  std::vector<float> x(config.MinHashInputDim(), 0.5f);
  auto pz = model.ProjectMinHash(zero);
  auto px = model.ProjectMinHash(x);
  // Linear layer: f(0) = bias; f(x) != f(0) for generic x.
  EXPECT_EQ(pz.size(), config.encoder.hidden);
  EXPECT_NE(pz, px);

  std::vector<float> nz(config.NumericalInputDim(), 0.0f);
  EXPECT_EQ(model.ProjectNumerical(nz).size(), config.encoder.hidden);
}

// ------------------------------------------------- Metrics invariants

class MetricsBoundsTest : public testing::TestWithParam<size_t> {};

TEST_P(MetricsBoundsTest, PrecisionRecallF1InUnitInterval) {
  const size_t k = GetParam();
  Rng rng(k);
  std::vector<size_t> ranked(20);
  std::iota(ranked.begin(), ranked.end(), size_t{0});
  rng.Shuffle(&ranked);
  std::vector<size_t> gold;
  for (size_t g = 0; g < 7; ++g) gold.push_back(rng.Uniform(25));

  search::RankedMetrics m = search::MetricsAtK(ranked, gold, k);
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 1.0);
  EXPECT_GE(m.recall, 0.0);
  EXPECT_LE(m.recall, 1.0);
  EXPECT_GE(m.f1, 0.0);
  EXPECT_LE(m.f1, 1.0);
  // F1 is the harmonic mean: bounded by both components.
  EXPECT_LE(m.f1, std::max(m.precision, m.recall) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ks, MetricsBoundsTest, testing::Values(1, 3, 5, 10, 50));

TEST(MetricsInvariantTest, RecallMonotoneInK) {
  std::vector<size_t> ranked = {4, 1, 9, 2, 7, 0, 3};
  std::vector<size_t> gold = {1, 2, 3};
  double prev = 0.0;
  for (size_t k = 1; k <= ranked.size(); ++k) {
    double r = search::MetricsAtK(ranked, gold, k).recall;
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(MetricsInvariantTest, WeightedF1PermutationInvariant) {
  std::vector<int> y_true = {0, 1, 1, 0, 1, 0};
  std::vector<int> y_pred = {0, 1, 0, 0, 1, 1};
  double base = search::WeightedF1(y_true, y_pred, 2);
  // Permute example order consistently; metric must not change.
  std::vector<size_t> perm = {5, 3, 1, 0, 4, 2};
  std::vector<int> t2, p2;
  for (size_t i : perm) {
    t2.push_back(y_true[i]);
    p2.push_back(y_pred[i]);
  }
  EXPECT_DOUBLE_EQ(search::WeightedF1(t2, p2, 2), base);
}

// --------------------------------------------- Tokenizer round-trip sweep

class TokenizerRoundTripTest : public testing::TestWithParam<const char*> {};

TEST_P(TokenizerRoundTripTest, EncodeDecodeRecoversKnownText) {
  std::string input = GetParam();
  std::vector<std::string> words = text::BasicTokenize(input);
  text::Vocab vocab = text::Vocab::Build(words);
  text::Tokenizer tokenizer(&vocab);
  EXPECT_EQ(tokenizer.Decode(tokenizer.Encode(input)),
            [&] {
              std::string joined;
              for (const auto& w : words) {
                if (!joined.empty()) joined += " ";
                joined += w;
              }
              return joined;
            }());
}

INSTANTIATE_TEST_SUITE_P(Texts, TokenizerRoundTripTest,
                         testing::Values("reference area", "obs value 42",
                                         "residential properties age",
                                         "import export trade flows",
                                         "a b c d e"));

// -------------------------------------------------- Optimizer invariants

TEST(OptimizerPropertyTest, ZeroGradMeansNoWeightChangeExceptDecay) {
  Rng rng(2);
  nn::Linear lin(3, 3, &rng);
  nn::AdamW::Options opt;
  opt.lr = 0.1f;
  opt.weight_decay = 0.0f;
  nn::AdamW optimizer(lin.Params("m"), opt);
  nn::Tensor before = lin.weight()->value();
  optimizer.ZeroGrad();
  optimizer.Step();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(lin.weight()->value()[i], before[i]);
  }
}

TEST(OptimizerPropertyTest, WeightDecayShrinksWeights) {
  Rng rng(3);
  nn::Linear lin(4, 4, &rng);
  nn::AdamW::Options opt;
  opt.lr = 0.1f;
  opt.weight_decay = 0.5f;
  nn::AdamW optimizer(lin.Params("m"), opt);
  float norm_before = lin.weight()->value().Norm();
  optimizer.ZeroGrad();
  optimizer.Step();
  EXPECT_LT(lin.weight()->value().Norm(), norm_before);
}

// ------------------------------------------------ Dropout scaling sweep

class DropoutScaleTest : public testing::TestWithParam<float> {};

TEST_P(DropoutScaleTest, ExpectationPreserved) {
  const float p = GetParam();
  Rng rng(4);
  nn::Var x = nn::MakeLeaf(nn::Tensor(1, 5000, 1.0f), false);
  nn::Var y = nn::Dropout(x, p, /*training=*/true, &rng);
  EXPECT_NEAR(y->value().Mean(), 1.0f, 0.12f);
}

INSTANTIATE_TEST_SUITE_P(Rates, DropoutScaleTest,
                         testing::Values(0.1f, 0.25f, 0.5f, 0.75f));

// ------------------------------------------- K-way top-k merge properties

using ColumnHit = search::ColumnEmbeddingIndex::ColumnHit;

std::tuple<float, size_t, size_t> HitKey(const ColumnHit& h) {
  return {h.distance, h.table_id, h.column_index};
}

// Random sorted hit lists with globally unique (table, column) pairs — the
// shape per-shard candidate lists have, since shards partition columns.
std::vector<std::vector<ColumnHit>> RandomHitLists(size_t num_lists,
                                                   size_t max_len, Rng* rng) {
  std::vector<std::vector<ColumnHit>> lists(num_lists);
  size_t next_table = 0;
  for (auto& list : lists) {
    size_t len = rng->Uniform(static_cast<uint32_t>(max_len + 1));
    for (size_t i = 0; i < len; ++i) {
      list.push_back({next_table++, rng->Uniform(4),
                      static_cast<float>(rng->UniformDouble(0, 2))});
    }
    std::sort(list.begin(), list.end(), [](const ColumnHit& a, const ColumnHit& b) {
      return HitKey(a) < HitKey(b);
    });
  }
  return lists;
}

class MergeColumnHitsTest : public testing::TestWithParam<size_t> {};

TEST_P(MergeColumnHitsTest, EqualsSortedConcatenationTruncated) {
  const size_t k = GetParam();
  Rng rng(40 + k);
  for (int trial = 0; trial < 10; ++trial) {
    auto lists = RandomHitLists(1 + rng.Uniform(6u), 12, &rng);
    std::vector<ColumnHit> all;
    for (const auto& list : lists) all.insert(all.end(), list.begin(), list.end());
    std::sort(all.begin(), all.end(), [](const ColumnHit& a, const ColumnHit& b) {
      return HitKey(a) < HitKey(b);
    });
    if (all.size() > k) all.resize(k);

    auto merged = search::TableRanker::MergeColumnHits(lists, k);
    ASSERT_EQ(merged.size(), all.size());
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(HitKey(merged[i]), HitKey(all[i]));
    }
  }
}

TEST_P(MergeColumnHitsTest, InvariantToInputListOrder) {
  const size_t k = GetParam();
  Rng rng(50 + k);
  auto lists = RandomHitLists(5, 10, &rng);
  auto base = search::TableRanker::MergeColumnHits(lists, k);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<size_t> perm(lists.size());
    std::iota(perm.begin(), perm.end(), size_t{0});
    rng.Shuffle(&perm);
    std::vector<std::vector<ColumnHit>> shuffled;
    for (size_t i : perm) shuffled.push_back(lists[i]);
    auto merged = search::TableRanker::MergeColumnHits(shuffled, k);
    ASSERT_EQ(merged.size(), base.size());
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(HitKey(merged[i]), HitKey(base[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, MergeColumnHitsTest, testing::Values(1, 5, 20, 100));

// ------------------------------------------- Shard routing properties

class ShardRoutingTest : public testing::TestWithParam<size_t> {};

TEST_P(ShardRoutingTest, StablePartitionAcrossRebuilds) {
  const size_t num_shards = GetParam();
  const size_t dim = 4, num_tables = 120;
  Rng rng(60);
  std::vector<std::string> ids;
  for (size_t t = 0; t < num_tables; ++t) {
    ids.push_back("tbl_" + std::to_string(rng.Uniform(1u << 20)) + "_" +
                  std::to_string(t));
  }
  auto build = [&] {
    search::ShardedLakeIndex index(dim, num_shards);
    Rng vec_rng(61);
    for (const auto& id : ids) {
      std::vector<float> v(dim);
      for (auto& x : v) x = static_cast<float>(vec_rng.Normal());
      index.AddTable(id, {v});
    }
    return index;
  };
  search::ShardedLakeIndex first = build();
  search::ShardedLakeIndex second = build();

  // Every table lands in exactly one shard: shard sizes sum to the total.
  size_t total = 0;
  for (size_t s = 0; s < first.num_shards(); ++s) total += first.shard_size(s);
  EXPECT_EQ(total, num_tables);

  for (const auto& id : ids) {
    const size_t shard = first.shard_of(id);
    EXPECT_LT(shard, first.num_shards());
    // Same shard across rebuilds, and identical to the bare routing hash.
    EXPECT_EQ(second.shard_of(id), shard);
    EXPECT_EQ(StableShard(id, num_shards), shard);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardRoutingTest,
                         testing::Values(1, 2, 3, 8));

// ----------------------------------------------------- Failure injection

using PropertyDeathTest = testing::Test;

TEST(PropertyDeathTest, MatMulShapeMismatchAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  nn::Var a = nn::MakeLeaf(nn::Tensor(2, 3), false);
  nn::Var b = nn::MakeLeaf(nn::Tensor(4, 2), false);
  EXPECT_DEATH({ nn::MatMul(a, b); }, "Check failed");
}

TEST(PropertyDeathTest, EmbeddingOutOfRangeAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  nn::Var w = nn::MakeLeaf(nn::Tensor(5, 2), false);
  EXPECT_DEATH({ nn::EmbeddingLookup(w, {7}); }, "Check failed");
}

TEST(PropertyDeathTest, BackwardRequiresScalarLoss) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  nn::Var x = nn::MakeLeaf(nn::Tensor(2, 2), true);
  nn::Var y = nn::Scale(x, 2.0f);
  EXPECT_DEATH({ nn::Backward(y); }, "Check failed");
}

TEST(PropertyDeathTest, MinHashSizeMismatchAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  MinHash a(16), b(32);
  EXPECT_DEATH({ a.EstimateJaccard(b); }, "Check failed");
}

// ---------------------------------------- Checkpoint failure injection

TEST(CheckpointFailureTest, TruncatedFileRejected) {
  Rng rng(5);
  nn::Linear lin(4, 4, &rng);
  std::string path = testing::TempDir() + "/tsfm_trunc.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(lin.Params("m"), path).ok());
  // Truncate the file to half.
  {
    std::string data;
    {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      data = ss.str();
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  EXPECT_FALSE(nn::LoadCheckpoint(lin.Params("m"), path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointFailureTest, GarbageMagicRejected) {
  Rng rng(6);
  nn::Linear lin(2, 2, &rng);
  std::string path = testing::TempDir() + "/tsfm_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  auto status = nn::LoadCheckpoint(lin.Params("m"), path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

// --------------------------------------- server wire-protocol round trips
//
// Every message the server and client can exchange must encode->decode to
// an identical value, across all opcodes and the degenerate shapes (zero
// queries, zero k, empty ids, error statuses); and no proper prefix of an
// encoding may decode successfully — a truncated payload is a parse error,
// never a crash or a silently misparsed message.

server::Request RandomRequest(Rng* rng) {
  server::Request request;
  switch (rng->UniformInt(0, 8)) {
    case 0: request.op = server::Opcode::kJoin; break;
    case 1: request.op = server::Opcode::kUnion; break;
    case 2: request.op = server::Opcode::kStats; break;
    case 3: request.op = server::Opcode::kShardQuery; break;
    case 4: request.op = server::Opcode::kHealth; break;
    case 5: request.op = server::Opcode::kShardTables; break;
    case 6: request.op = server::Opcode::kAddTable; break;
    case 7: request.op = server::Opcode::kRemoveTable; break;
    default: request.op = server::Opcode::kCompact; break;
  }
  // Messages travel at the lowest version that can carry them (what
  // LakeClient sends); round trips must preserve that.
  request.version = server::RequiredVersion(request.op);
  if (request.op == server::Opcode::kStats ||
      request.op == server::Opcode::kHealth ||
      request.op == server::Opcode::kShardTables ||
      request.op == server::Opcode::kCompact) {
    return request;
  }
  if (request.op == server::Opcode::kAddTable ||
      request.op == server::Opcode::kRemoveTable) {
    // Mutations carry a table id (empty ids must survive the wire too);
    // ingest adds the new table's columns but no k.
    if (rng->UniformInt(0, 4) != 0) {
      request.table_id = "tbl_" + std::to_string(rng->UniformInt(0, 999));
    }
    if (request.op == server::Opcode::kAddTable) {
      request.columns.resize(static_cast<size_t>(rng->UniformInt(0, 3)));
      size_t dim = static_cast<size_t>(rng->UniformInt(0, 8));
      for (auto& column : request.columns) {
        column.resize(dim);
        for (auto& x : column) x = static_cast<float>(rng->Normal());
      }
    }
    return request;
  }
  request.k = static_cast<uint32_t>(rng->UniformInt(0, 50));
  size_t num_columns = request.op == server::Opcode::kJoin
                           ? 1
                           : static_cast<size_t>(rng->UniformInt(0, 4));
  size_t dim = static_cast<size_t>(rng->UniformInt(0, 8));
  request.columns.resize(num_columns);
  for (auto& column : request.columns) {
    column.resize(dim);
    for (auto& x : column) x = static_cast<float>(rng->Normal());
  }
  return request;
}

server::Response RandomResponse(Rng* rng) {
  server::Response response;
  switch (rng->UniformInt(0, 8)) {
    case 0: response.op = server::Opcode::kJoin; break;
    case 1: response.op = server::Opcode::kUnion; break;
    case 2: response.op = server::Opcode::kStats; break;
    case 3: response.op = server::Opcode::kShardQuery; break;
    case 4: response.op = server::Opcode::kHealth; break;
    case 5: response.op = server::Opcode::kShardTables; break;
    case 6: response.op = server::Opcode::kAddTable; break;
    case 7: response.op = server::Opcode::kRemoveTable; break;
    default: response.op = server::Opcode::kCompact; break;
  }
  response.version = server::RequiredVersion(response.op);
  if (rng->UniformInt(0, 3) == 0) {
    response.status = StatusCode::kInvalidArgument;
    response.message = "injected failure #" + std::to_string(rng->UniformInt(0, 99));
    return response;
  }
  if (response.op == server::Opcode::kStats) {
    response.stats.requests = static_cast<uint64_t>(rng->UniformInt(0, 1000));
    response.stats.batches = static_cast<uint64_t>(rng->UniformInt(0, 100));
    response.stats.max_batch = static_cast<uint64_t>(rng->UniformInt(0, 64));
    response.stats.total_queue_wait_ms = rng->UniformDouble(0, 10);
    response.stats.total_latency_ms = rng->UniformDouble(0, 10);
    // Half the time, upgrade to a v3 stats frame carrying churn counters —
    // the shape a v3 client's Stats() call elicits.
    if (rng->Bernoulli(0.5)) {
      response.version = server::kProtocolVersion;
      response.stats.pending_delta_tables =
          static_cast<uint64_t>(rng->UniformInt(0, 50));
      response.stats.pending_tombstones =
          static_cast<uint64_t>(rng->UniformInt(0, 50));
      response.stats.compactions = static_cast<uint64_t>(rng->UniformInt(0, 9));
    }
    return response;
  }
  if (response.op == server::Opcode::kAddTable ||
      response.op == server::Opcode::kRemoveTable ||
      response.op == server::Opcode::kCompact) {
    return response;  // mutation acks travel as empty id lists
  }
  if (response.op == server::Opcode::kHealth) {
    response.health.protocol_version = server::kProtocolVersion;
    response.health.backend = static_cast<uint8_t>(rng->UniformInt(0, 1));
    response.health.metric = static_cast<uint8_t>(rng->UniformInt(0, 1));
    response.health.dim = static_cast<uint64_t>(rng->UniformInt(1, 256));
    response.health.num_tables = static_cast<uint64_t>(rng->UniformInt(0, 500));
    response.health.num_columns = static_cast<uint64_t>(rng->UniformInt(0, 900));
    return response;
  }
  if (response.op == server::Opcode::kShardQuery) {
    size_t lists = static_cast<size_t>(rng->UniformInt(0, 3));
    response.hits.resize(lists);
    for (auto& list : response.hits) {
      size_t n = static_cast<size_t>(rng->UniformInt(0, 5));
      for (size_t i = 0; i < n; ++i) {
        list.push_back({static_cast<uint64_t>(rng->UniformInt(0, 999)),
                        static_cast<uint32_t>(rng->UniformInt(0, 7)),
                        static_cast<float>(rng->UniformDouble(0, 2))});
      }
    }
    return response;
  }
  size_t n = static_cast<size_t>(rng->UniformInt(0, 6));
  for (size_t i = 0; i < n; ++i) {
    // Include the empty string: a zero-length table id must survive the wire.
    response.ids.push_back(i == 0 ? "" : "tbl_" + std::to_string(rng->UniformInt(0, 999)));
  }
  return response;
}

class ProtocolRoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolRoundTripTest, RequestsSurviveTheWire) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    server::Request request = RandomRequest(&rng);
    std::string payload = server::SerializeRequest(request);
    std::istringstream in(payload);
    server::Request decoded;
    ASSERT_TRUE(server::DecodeRequest(in, &decoded).ok());
    EXPECT_EQ(decoded, request);
  }
}

TEST_P(ProtocolRoundTripTest, ResponsesSurviveTheWire) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 50; ++i) {
    server::Response response = RandomResponse(&rng);
    std::string payload = server::SerializeResponse(response);
    std::istringstream in(payload);
    server::Response decoded;
    ASSERT_TRUE(server::DecodeResponse(in, &decoded).ok());
    EXPECT_EQ(decoded, response);
  }
}

TEST_P(ProtocolRoundTripTest, NoProperPrefixOfAQueryRequestDecodes) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 10; ++i) {
    server::Request request = RandomRequest(&rng);
    // Header-only opcodes (STATS/HEALTH/SHARD_TABLES/COMPACT) are 2-byte
    // payloads with no proper prefix worth cutting.
    if (request.columns.empty() && request.k == 0 &&
        (request.op == server::Opcode::kStats ||
         request.op == server::Opcode::kHealth ||
         request.op == server::Opcode::kShardTables ||
         request.op == server::Opcode::kCompact)) {
      continue;
    }
    std::string payload = server::SerializeRequest(request);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      std::istringstream in(payload.substr(0, cut));
      server::Request decoded;
      EXPECT_FALSE(server::DecodeRequest(in, &decoded).ok())
          << "prefix of " << cut << "/" << payload.size() << " bytes decoded";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolRoundTripTest,
                         testing::Values(1u, 2u, 3u, 4u));

TEST(ProtocolRoundTripTest, ExplicitEdgeCases) {
  // Zero-query union with zero k: the smallest legal query message.
  server::Request empty_union;
  empty_union.op = server::Opcode::kUnion;
  empty_union.k = 0;
  std::string payload = server::SerializeRequest(empty_union);
  std::istringstream in(payload);
  server::Request decoded;
  ASSERT_TRUE(server::DecodeRequest(in, &decoded).ok());
  EXPECT_EQ(decoded, empty_union);
  EXPECT_TRUE(decoded.columns.empty());

  // An OK response with zero results.
  server::Response empty_ok;
  empty_ok.op = server::Opcode::kUnion;
  std::string response_payload = server::SerializeResponse(empty_ok);
  std::istringstream rin(response_payload);
  server::Response rdecoded;
  ASSERT_TRUE(server::DecodeResponse(rin, &rdecoded).ok());
  EXPECT_EQ(rdecoded, empty_ok);

  // A hostile column count must be rejected before any allocation.
  std::ostringstream hostile;
  search::io::WritePod(hostile, server::kProtocolVersion);
  search::io::WritePod(hostile, static_cast<uint8_t>(server::Opcode::kUnion));
  search::io::WritePod(hostile, uint32_t{10});           // k
  search::io::WritePod(hostile, uint32_t{0xFFFFFFFF});   // columns
  search::io::WritePod(hostile, uint32_t{0xFFFFFFFF});   // dim
  std::istringstream hin(hostile.str());
  server::Request hostile_decoded;
  auto status = server::DecodeRequest(hin, &hostile_decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

// ------------------------------------- protocol version compatibility rules
//
// The compatibility contract (src/server/README.md): v1 opcodes travel in
// v1 frames and decode under every supported version; v2 (shard) opcodes
// require v2 frames and v3 (mutation) opcodes v3 frames; versions outside
// [min, current] are rejected; and a newer opcode smuggled into an older
// frame is a parse error, because an old-version-only peer would misparse
// it.

TEST(ProtocolVersionTest, EncodersStampTheLowestVersionThatCarriesTheOpcode) {
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kJoin), 1);
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kUnion), 1);
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kStats), 1);
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kShardQuery), 2);
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kHealth), 2);
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kShardTables), 2);
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kAddTable), 3);
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kRemoveTable), 3);
  EXPECT_EQ(server::RequiredVersion(server::Opcode::kCompact), 3);
}

TEST(ProtocolVersionTest, V1OpcodesDecodeUnderAllSupportedVersions) {
  for (uint8_t version : {uint8_t{1}, uint8_t{2}, uint8_t{3}}) {
    server::Request request;
    request.version = version;
    request.op = server::Opcode::kJoin;
    request.k = 3;
    request.columns = {{1.0f, 2.0f}};
    std::istringstream in(server::SerializeRequest(request));
    server::Request decoded;
    ASSERT_TRUE(server::DecodeRequest(in, &decoded).ok())
        << "version " << int(version);
    EXPECT_EQ(decoded, request);
  }
}

TEST(ProtocolVersionTest, ShardOpcodeInsideAV1FrameIsRejected) {
  server::Request request;
  request.version = 1;  // lies: shard opcodes need version 2
  request.op = server::Opcode::kShardQuery;
  request.k = 5;
  request.columns = {{1.0f, 2.0f}};
  std::istringstream in(server::SerializeRequest(request));
  server::Request decoded;
  auto status = server::DecodeRequest(in, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(ProtocolVersionTest, MutationOpcodesInsideOlderFramesAreRejected) {
  // A v1/v2 peer cannot parse the mutation payloads, so the decoder must
  // refuse the combination outright — a pre-v3 client never hangs on a
  // half-understood ADD_TABLE, it gets a clean parse error.
  for (uint8_t version : {uint8_t{1}, uint8_t{2}}) {
    for (auto op : {server::Opcode::kAddTable, server::Opcode::kRemoveTable,
                    server::Opcode::kCompact}) {
      server::Request request;
      request.version = version;
      request.op = op;
      request.table_id = "t";
      if (op == server::Opcode::kAddTable) request.columns = {{1.0f, 2.0f}};
      std::istringstream in(server::SerializeRequest(request));
      server::Request decoded;
      auto status = server::DecodeRequest(in, &decoded);
      ASSERT_FALSE(status.ok())
          << "op " << int(static_cast<uint8_t>(op)) << " v" << int(version);
      EXPECT_EQ(status.code(), StatusCode::kParseError);
      EXPECT_NE(status.ToString().find("requires protocol version"),
                std::string::npos)
          << status.ToString();
    }
  }
}

TEST(ProtocolVersionTest, StatsPayloadKeepsTheFiveFieldShapeForOldPeers) {
  // The churn counters ride only in v3-stamped stats frames; a v1/v2 peer
  // keeps receiving (and fully consuming) the exact payload it always had.
  server::Response churned;
  churned.op = server::Opcode::kStats;
  churned.stats.requests = 7;
  churned.stats.pending_delta_tables = 4;
  churned.stats.pending_tombstones = 2;
  churned.stats.compactions = 1;
  churned.version = 2;
  const std::string old_frame = server::SerializeResponse(churned);
  churned.version = 3;
  const std::string new_frame = server::SerializeResponse(churned);
  // Exactly the three u64 counters of extra payload, and not a byte more.
  EXPECT_EQ(new_frame.size(), old_frame.size() + 3 * sizeof(uint64_t));

  std::istringstream in(old_frame);
  server::Response decoded;
  ASSERT_TRUE(server::DecodeResponse(in, &decoded).ok());
  EXPECT_EQ(decoded.stats.requests, 7u);
  EXPECT_EQ(decoded.stats.pending_delta_tables, 0u);
  EXPECT_EQ(decoded.stats.pending_tombstones, 0u);
  EXPECT_EQ(decoded.stats.compactions, 0u);
}

TEST(ProtocolVersionTest, HostileTableIdLengthIsRejectedBeforeAllocation) {
  std::ostringstream hostile;
  search::io::WritePod(hostile, server::kProtocolVersion);
  search::io::WritePod(hostile,
                       static_cast<uint8_t>(server::Opcode::kRemoveTable));
  search::io::WritePod(hostile, uint32_t{0xFFFFFFFF});  // table id length
  std::istringstream in(hostile.str());
  server::Request decoded;
  auto status = server::DecodeRequest(in, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(ProtocolVersionTest, VersionsOutsideTheSupportedRangeAreRejected) {
  for (uint8_t version : {uint8_t{0}, uint8_t{server::kProtocolVersion + 1}}) {
    server::Request request;
    request.version = version;
    request.op = server::Opcode::kStats;
    std::istringstream in(server::SerializeRequest(request));
    server::Request decoded;
    auto status = server::DecodeRequest(in, &decoded);
    ASSERT_FALSE(status.ok()) << "version " << int(version);
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
}

TEST(ProtocolVersionTest, ErrorResponsesAreDecodableByTheOldestPeer) {
  // Frame-level errors can be answered before any request version is known;
  // they must arrive in a version-1 envelope so even a v1 client reads them.
  server::Response error = server::Response::Error(
      server::Opcode::kJoin, Status::OutOfRange("too big"));
  EXPECT_EQ(error.version, 1);
  std::istringstream in(server::SerializeResponse(error));
  server::Response decoded;
  ASSERT_TRUE(server::DecodeResponse(in, &decoded).ok());
  EXPECT_EQ(decoded, error);
}

}  // namespace
}  // namespace tsfm
