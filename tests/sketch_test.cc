#include <gtest/gtest.h>

#include <cmath>

#include "sketch/content_snapshot.h"
#include "sketch/minhash.h"
#include "sketch/minhash_lsh.h"
#include "sketch/numerical_sketch.h"
#include "sketch/simhash.h"
#include "sketch/table_sketch.h"
#include "util/random.h"

namespace tsfm {
namespace {

std::vector<std::string> MakeSet(int start, int count) {
  std::vector<std::string> out;
  for (int i = 0; i < count; ++i) out.push_back("item_" + std::to_string(start + i));
  return out;
}

// ---------------------------------------------------------------- MinHash

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  auto s = MakeSet(0, 50);
  MinHash a = MinHashOfSet(s, 64);
  MinHash b = MinHashOfSet(s, 64);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 1.0);
  EXPECT_EQ(a.HammingDistance(b), 0u);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  MinHash a = MinHashOfSet(MakeSet(0, 50), 64);
  MinHash b = MinHashOfSet(MakeSet(1000, 50), 64);
  EXPECT_LT(a.EstimateJaccard(b), 0.1);
}

TEST(MinHashTest, InsertionOrderIrrelevant) {
  auto s = MakeSet(0, 30);
  MinHash a(32), b(32);
  a.UpdateAll(s);
  std::reverse(s.begin(), s.end());
  b.UpdateAll(s);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 1.0);
}

TEST(MinHashTest, DuplicatesDoNotChangeSignature) {
  MinHash a(32), b(32);
  a.UpdateAll({"x", "y"});
  b.UpdateAll({"x", "y", "x", "y", "x"});
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 1.0);
}

TEST(MinHashTest, EmptySignatures) {
  MinHash a(16), b(16);
  EXPECT_TRUE(a.empty());
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 1.0);  // both empty = both the empty set
  b.Update("x");
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 0.0);
}

TEST(MinHashTest, MergeEqualsUnion) {
  auto s1 = MakeSet(0, 30);
  auto s2 = MakeSet(20, 30);  // overlap 10
  MinHash a = MinHashOfSet(s1, 64);
  a.Merge(MinHashOfSet(s2, 64));
  std::vector<std::string> u = s1;
  u.insert(u.end(), s2.begin(), s2.end());
  MinHash direct = MinHashOfSet(u, 64);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(direct), 1.0);
}

TEST(MinHashTest, ToFloatsInUnitRange) {
  MinHash a = MinHashOfSet(MakeSet(0, 10), 16);
  auto f = a.ToFloats();
  ASSERT_EQ(f.size(), 16u);
  for (float v : f) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

// Property sweep: estimation error bounded by ~3/sqrt(K) across overlap
// levels (standard MinHash variance bound, 3 sigma).
class MinHashAccuracyTest : public testing::TestWithParam<int> {};

TEST_P(MinHashAccuracyTest, EstimatesTrueJaccard) {
  const int overlap = GetParam();
  const int n = 200;
  auto a_set = MakeSet(0, n);
  auto b_set = MakeSet(n - overlap, n);  // |A ∩ B| = overlap
  double true_jaccard = static_cast<double>(overlap) / (2 * n - overlap);
  const size_t num_perm = 256;
  MinHash a = MinHashOfSet(a_set, num_perm);
  MinHash b = MinHashOfSet(b_set, num_perm);
  double bound = 3.0 / std::sqrt(static_cast<double>(num_perm));
  EXPECT_NEAR(a.EstimateJaccard(b), true_jaccard, bound);
}

INSTANTIATE_TEST_SUITE_P(OverlapLevels, MinHashAccuracyTest,
                         testing::Values(0, 20, 50, 100, 150, 180, 200));

// ------------------------------------------------------- Numerical sketch

TEST(NumericalSketchTest, CompressStatMonotoneAndSigned) {
  EXPECT_LT(CompressStat(10), CompressStat(100));
  EXPECT_FLOAT_EQ(CompressStat(0), 0.0f);
  EXPECT_FLOAT_EQ(CompressStat(-5), -CompressStat(5));
}

TEST(NumericalSketchTest, LayoutMatchesPaper) {
  Column col;
  col.name = "x";
  col.type = ColumnType::kInteger;
  col.cells = {"10", "20", "30", "40"};
  NumericalSketch s = MakeNumericalSketch(col);
  // Slot 0: unique fraction = 1.0 compressed.
  EXPECT_FLOAT_EQ(s.values[0], CompressStat(1.0));
  // Slot 14/15: min/max.
  EXPECT_FLOAT_EQ(s.values[14], CompressStat(10));
  EXPECT_FLOAT_EQ(s.values[15], CompressStat(40));
  // Percentiles are non-decreasing.
  for (int i = 4; i <= 11; ++i) {
    EXPECT_GE(s.values[i], s.values[i - 1]);
  }
}

TEST(NumericalSketchTest, StringColumnHasZeroNumericSlots) {
  Column col;
  col.name = "s";
  col.type = ColumnType::kString;
  col.cells = {"abc", "de"};
  NumericalSketch s = MakeNumericalSketch(col);
  for (int i = 3; i < 16; ++i) EXPECT_FLOAT_EQ(s.values[i], 0.0f);
  EXPECT_GT(s.values[2], 0.0f);  // width populated
}

TEST(NumericalSketchTest, DistinguishesShiftedDistributions) {
  Column a, b;
  a.type = b.type = ColumnType::kFloat;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    a.cells.push_back(std::to_string(rng.Normal(100, 10)));
    b.cells.push_back(std::to_string(rng.Normal(500, 10)));
  }
  NumericalSketch sa = MakeNumericalSketch(a);
  NumericalSketch sb = MakeNumericalSketch(b);
  EXPECT_GT(std::fabs(sa.values[12] - sb.values[12]), 0.5f);  // means differ
}

// -------------------------------------------------------- Content snapshot

TEST(ContentSnapshotTest, SubsetRowsOverlap) {
  Table t("t", "d");
  std::vector<std::string> col;
  for (int i = 0; i < 100; ++i) col.push_back("v" + std::to_string(i));
  t.AddColumn("c", col);

  Table sub = t.Slice({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {0});
  MinHash full = MakeContentSnapshot(t, 128);
  MinHash subset = MakeContentSnapshot(sub, 128);
  // Subset of rows -> containment -> nonzero jaccard.
  EXPECT_GT(full.EstimateJaccard(subset), 0.02);
}

TEST(ContentSnapshotTest, RowOrderInvariant) {
  Table t("t", "d");
  t.AddColumn("c", {"a", "b", "c", "d"});
  Table shuffled = t.WithRowOrder({3, 1, 0, 2});
  MinHash a = MakeContentSnapshot(t, 64);
  MinHash b = MakeContentSnapshot(shuffled, 64);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 1.0);
}

TEST(ContentSnapshotTest, ColumnOrderChangesSnapshot) {
  Table t("t", "d");
  t.AddColumn("c1", {"a", "b"});
  t.AddColumn("c2", {"x", "y"});
  Table reordered = t.WithColumnOrder({1, 0});
  MinHash a = MakeContentSnapshot(t, 64);
  MinHash b = MakeContentSnapshot(reordered, 64);
  EXPECT_LT(a.EstimateJaccard(b), 0.5);  // row strings differ
}

// ------------------------------------------------------------ TableSketch

TEST(TableSketchTest, BuildsAllColumnSketches) {
  Table t("t", "sales table");
  t.AddColumn("product", {"widget a", "widget b", "widget a"});
  t.AddColumn("units", {"10", "20", "30"});
  t.InferTypes();
  TableSketch s = BuildTableSketch(t);
  ASSERT_EQ(s.columns.size(), 2u);
  EXPECT_EQ(s.columns[0].type, ColumnType::kString);
  EXPECT_EQ(s.columns[1].type, ColumnType::kInteger);
  EXPECT_FALSE(s.columns[0].word_minhash.empty());
  EXPECT_TRUE(s.columns[1].word_minhash.empty());  // numeric: no word sketch
  EXPECT_FALSE(s.content_snapshot.empty());
}

TEST(TableSketchTest, MinHashInputWidthIsFixed) {
  Table t("t", "d");
  t.AddColumn("s", {"a", "b"});
  t.AddColumn("n", {"1", "2"});
  t.InferTypes();
  SketchOptions opt;
  opt.num_perm = 16;
  TableSketch s = BuildTableSketch(t, opt);
  EXPECT_EQ(s.columns[0].MinHashInput().size(), 32u);
  EXPECT_EQ(s.columns[1].MinHashInput().size(), 32u);
}

TEST(TableSketchTest, DistinctCellsSkipsNullsAndDupes) {
  Column col;
  col.cells = {"a", "", "a", "NaN", "b"};
  auto cells = DistinctCells(col);
  EXPECT_EQ(cells.size(), 2u);
}

TEST(TableSketchTest, DistinctWordsLowercasesAndSplits) {
  Column col;
  col.cells = {"New York", "new jersey"};
  auto words = DistinctWords(col);
  // {new, york, jersey}
  EXPECT_EQ(words.size(), 3u);
}

// ---------------------------------------------------------------- SimHash

TEST(SimHashTest, IdenticalVectorsSameCode) {
  SimHasher h(8, 32);
  std::vector<float> v = {1, -2, 3, 0.5, -1, 2, 0, 1};
  EXPECT_EQ(h.Hash(v), h.Hash(v));
  EXPECT_EQ(h.HammingDistance(h.Hash(v), h.Hash(v)), 0);
}

TEST(SimHashTest, SimilarVectorsCloserThanRandom) {
  SimHasher h(16, 64);
  Rng rng(2);
  std::vector<float> a(16), near(16), far(16);
  for (size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<float>(rng.Normal());
    near[i] = a[i] + 0.05f * static_cast<float>(rng.Normal());
    far[i] = static_cast<float>(rng.Normal());
  }
  int d_near = h.HammingDistance(h.Hash(a), h.Hash(near));
  int d_far = h.HammingDistance(h.Hash(a), h.Hash(far));
  EXPECT_LT(d_near, d_far);
}

// ------------------------------------------------------------ MinHash LSH

TEST(MinHashLshTest, FindsNearDuplicates) {
  MinHashLsh lsh(64, 16);
  auto base = MakeSet(0, 100);
  lsh.Insert("dup", MinHashOfSet(base, 64));
  lsh.Insert("other", MinHashOfSet(MakeSet(5000, 100), 64));

  auto mostly_same = MakeSet(0, 95);  // jaccard 0.95
  auto hits = lsh.Query(MinHashOfSet(mostly_same, 64));
  EXPECT_NE(std::find(hits.begin(), hits.end(), "dup"), hits.end());
  EXPECT_EQ(std::find(hits.begin(), hits.end(), "other"), hits.end());
}

TEST(MinHashLshTest, SizeCounts) {
  MinHashLsh lsh(32, 8);
  EXPECT_EQ(lsh.size(), 0u);
  lsh.Insert("a", MinHashOfSet(MakeSet(0, 10), 32));
  EXPECT_EQ(lsh.size(), 1u);
}

TEST(LshForestTest, RanksHighOverlapFirst) {
  LshForest forest(64, 8, 8);
  auto q = MakeSet(0, 100);
  forest.Insert("high", MinHashOfSet(MakeSet(0, 110), 64));    // ~0.9
  forest.Insert("low", MinHashOfSet(MakeSet(80, 100), 64));    // ~0.1
  forest.Insert("none", MinHashOfSet(MakeSet(9000, 100), 64));

  auto hits = forest.Query(MinHashOfSet(q, 64), 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0], "high");
}

TEST(LshForestTest, RespectsK) {
  LshForest forest(64, 4, 8);
  for (int i = 0; i < 20; ++i) {
    forest.Insert("t" + std::to_string(i), MinHashOfSet(MakeSet(0, 50), 64));
  }
  auto hits = forest.Query(MinHashOfSet(MakeSet(0, 50), 64), 5);
  EXPECT_LE(hits.size(), 5u);
}

}  // namespace
}  // namespace tsfm
