// The distance-kernel seam: scalar/SIMD agreement (the 1e-4 relative
// tolerance contract), exact tail handling, the cosine normalization and
// zero-norm semantics the seam owns, ScanTopK vs the pairwise kernels,
// dispatch selection (including the LAKS_FORCE_SCALAR override), and
// end-to-end lake parity between kernel sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <unordered_set>
#include <vector>

#include "search/distance_kernels.h"
#include "search/hnsw.h"
#include "search/knn_index.h"
#include "search/quantizer.h"
#include "search/sharded_lake_index.h"
#include "search/vector_index.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tsfm::search {
namespace {

using testutil::RandomVec;

// Pins the process-wide kernel selection for one scope.
class ScopedKernels {
 public:
  explicit ScopedKernels(const KernelDispatch& kernels) {
    internal::OverrideKernelsForTest(&kernels);
  }
  ~ScopedKernels() { internal::OverrideKernelsForTest(nullptr); }
};

// The documented contract: kernel sets agree within 1e-4 relative (floored
// at 1 so near-zero values compare absolutely).
void ExpectWithinContract(float a, float b) {
  const float scale = std::max({1.0f, std::abs(a), std::abs(b)});
  EXPECT_LE(std::abs(a - b), 1e-4f * scale) << a << " vs " << b;
}

// ------------------------------------------------- scalar/SIMD agreement

TEST(DistanceKernelsTest, KernelSetsAgreeAcrossDims) {
  const KernelDispatch& scalar = ScalarKernels();
  const KernelDispatch& best = BestKernels();
  Rng rng(41);
  // 1..1024 including every sub-8 tail shape and non-multiple-of-8 dims.
  const std::vector<size_t> dims = {1,  2,  3,   4,   5,   6,   7,   8,  9,
                                    12, 15, 16,  17,  24,  31,  32,  33, 63,
                                    64, 65, 127, 128, 255, 257, 384, 511,
                                    512, 768, 1000, 1023, 1024};
  for (size_t dim : dims) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto a = RandomVec(&rng, dim);
      const auto b = RandomVec(&rng, dim);
      ExpectWithinContract(scalar.dot(a.data(), b.data(), dim),
                           best.dot(a.data(), b.data(), dim));
      ExpectWithinContract(scalar.l2sq(a.data(), b.data(), dim),
                           best.l2sq(a.data(), b.data(), dim));
      ExpectWithinContract(scalar.cosine(a.data(), b.data(), dim),
                           best.cosine(a.data(), b.data(), dim));
      // The batch kernels must agree with their pairwise counterparts too
      // (their row blocking changes the accumulation order).
      float batch_scalar = 0.0f, batch_best = 0.0f;
      scalar.dot_many(a.data(), b.data(), 1, dim, &batch_scalar);
      best.dot_many(a.data(), b.data(), 1, dim, &batch_best);
      ExpectWithinContract(batch_scalar, batch_best);
      ExpectWithinContract(scalar.dot(a.data(), b.data(), dim), batch_best);
    }
  }
}

TEST(DistanceKernelsTest, BatchKernelsMatchPairwiseAcrossRowCounts) {
  // 1..9 rows exercises the 4-row blocked main loop and every remainder.
  Rng rng(67);
  for (size_t dim : {7u, 8u, 19u, 64u}) {
    const auto query = RandomVec(&rng, dim);
    for (size_t rows = 1; rows <= 9; ++rows) {
      std::vector<float> data;
      for (size_t r = 0; r < rows; ++r) {
        const auto v = RandomVec(&rng, dim);
        data.insert(data.end(), v.begin(), v.end());
      }
      for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
        std::vector<float> dots(rows), l2s(rows);
        kd->dot_many(query.data(), data.data(), rows, dim, dots.data());
        kd->l2sq_many(query.data(), data.data(), rows, dim, l2s.data());
        for (size_t r = 0; r < rows; ++r) {
          ExpectWithinContract(dots[r],
                               kd->dot(query.data(), data.data() + r * dim, dim));
          ExpectWithinContract(
              l2s[r], kd->l2sq(query.data(), data.data() + r * dim, dim));
        }
      }
    }
  }
}

TEST(DistanceKernelsTest, IntegerVectorsAreExactIncludingTails) {
  // Small-integer floats make every partial product exact, so any
  // accumulation order must produce the identical sum — a wrong tail mask
  // (reading a lane too many or too few) shows up as an exact mismatch.
  Rng rng(43);
  for (size_t dim = 1; dim <= 40; ++dim) {
    std::vector<float> a(dim), b(dim);
    for (size_t i = 0; i < dim; ++i) {
      a[i] = static_cast<float>(static_cast<int>(rng.UniformDouble(-9, 9)));
      b[i] = static_cast<float>(static_cast<int>(rng.UniformDouble(-9, 9)));
    }
    float expected_dot = 0.0f, expected_l2 = 0.0f;
    for (size_t i = 0; i < dim; ++i) {
      expected_dot += a[i] * b[i];
      const float d = a[i] - b[i];
      expected_l2 += d * d;
    }
    for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
      EXPECT_EQ(kd->dot(a.data(), b.data(), dim), expected_dot)
          << kd->name << " dim " << dim;
      EXPECT_EQ(kd->l2sq(a.data(), b.data(), dim), expected_l2)
          << kd->name << " dim " << dim;
    }
  }
}

// --------------------------------------------- sq8 scalar/SIMD agreement

std::vector<uint8_t> RandomCodes(Rng* rng, size_t n) {
  std::vector<uint8_t> codes(n);
  for (auto& c : codes) {
    c = static_cast<uint8_t>(rng->UniformDouble(0, 255.999));
  }
  return codes;
}

TEST(DistanceKernelsTest, Sq8KernelSetsAgreeAcrossDims) {
  // Mirror of KernelSetsAgreeAcrossDims for the asymmetric u8 kernels:
  // same 1e-4 contract, same dim sweep with every sub-8 tail shape.
  const KernelDispatch& scalar = ScalarKernels();
  const KernelDispatch& best = BestKernels();
  Rng rng(151);
  const std::vector<size_t> dims = {1,  2,  3,   4,   5,   6,   7,   8,  9,
                                    12, 15, 16,  17,  24,  31,  32,  33, 63,
                                    64, 65, 127, 128, 255, 257, 384, 511,
                                    512, 768, 1000, 1023, 1024};
  for (size_t dim : dims) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto q = RandomVec(&rng, dim);
      const auto row = RandomCodes(&rng, dim);
      float dot_scalar = 0.0f, dot_best = 0.0f;
      scalar.dot_many_sq8(q.data(), row.data(), 1, dim, &dot_scalar);
      best.dot_many_sq8(q.data(), row.data(), 1, dim, &dot_best);
      ExpectWithinContract(dot_scalar, dot_best);
      float l2_scalar = 0.0f, l2_best = 0.0f;
      scalar.l2sq_many_sq8(q.data(), row.data(), 1, dim, &l2_scalar);
      best.l2sq_many_sq8(q.data(), row.data(), 1, dim, &l2_best);
      ExpectWithinContract(l2_scalar, l2_best);
    }
  }
}

TEST(DistanceKernelsTest, Sq8BatchKernelsMatchReferenceAcrossRowCounts) {
  // 1..9 rows exercises the 4-rows-abreast main loop and every remainder.
  Rng rng(157);
  for (size_t dim : {7u, 8u, 19u, 64u}) {
    const auto query = RandomVec(&rng, dim);
    for (size_t rows = 1; rows <= 9; ++rows) {
      const auto codes = RandomCodes(&rng, rows * dim);
      // Reference: per-row scalar accumulation over widened bytes.
      std::vector<float> ref_dot(rows, 0.0f), ref_l2(rows, 0.0f);
      for (size_t r = 0; r < rows; ++r) {
        for (size_t i = 0; i < dim; ++i) {
          const float u = static_cast<float>(codes[r * dim + i]);
          ref_dot[r] += query[i] * u;
          const float d = query[i] - u;
          ref_l2[r] += d * d;
        }
      }
      for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
        std::vector<float> dots(rows), l2s(rows);
        kd->dot_many_sq8(query.data(), codes.data(), rows, dim, dots.data());
        kd->l2sq_many_sq8(query.data(), codes.data(), rows, dim, l2s.data());
        for (size_t r = 0; r < rows; ++r) {
          ExpectWithinContract(dots[r], ref_dot[r]);
          ExpectWithinContract(l2s[r], ref_l2[r]);
        }
      }
    }
  }
}

TEST(DistanceKernelsTest, Sq8IntegerQueriesAreExactIncludingTails) {
  // Small-integer queries against u8 codes make every partial product
  // exact — any tail-handling bug (a byte too many or too few) shows up
  // as an exact mismatch on some dim in 1..40.
  Rng rng(163);
  for (size_t dim = 1; dim <= 40; ++dim) {
    std::vector<float> q(dim);
    for (auto& x : q) {
      x = static_cast<float>(static_cast<int>(rng.UniformDouble(-9, 9)));
    }
    const auto codes = RandomCodes(&rng, dim);
    float expected_dot = 0.0f, expected_l2 = 0.0f;
    for (size_t i = 0; i < dim; ++i) {
      const float u = static_cast<float>(codes[i]);
      expected_dot += q[i] * u;
      const float d = q[i] - u;
      expected_l2 += d * d;
    }
    for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
      float dot = 0.0f, l2 = 0.0f;
      kd->dot_many_sq8(q.data(), codes.data(), 1, dim, &dot);
      kd->l2sq_many_sq8(q.data(), codes.data(), 1, dim, &l2);
      EXPECT_EQ(dot, expected_dot) << kd->name << " dim " << dim;
      EXPECT_EQ(l2, expected_l2) << kd->name << " dim " << dim;
    }
  }
}

// ------------------------------------------------------ cosine semantics

TEST(DistanceKernelsTest, CosineKernelNormalizesInternally) {
  // Scaling either argument must not change the distance: normalization is
  // the kernel's job, never a caller-side division.
  Rng rng(47);
  const size_t dim = 13;
  const auto a = RandomVec(&rng, dim);
  auto b = RandomVec(&rng, dim);
  for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
    const float base = kd->cosine(a.data(), b.data(), dim);
    std::vector<float> scaled = b;
    for (auto& x : scaled) x *= 7.5f;
    ExpectWithinContract(base, kd->cosine(a.data(), scaled.data(), dim));
    EXPECT_NEAR(kd->cosine(a.data(), a.data(), dim), 0.0f, 1e-5f);
  }
}

TEST(DistanceKernelsTest, ZeroNormVectorsScoreMaxCosineDistance) {
  const std::vector<float> zero(11, 0.0f);
  Rng rng(53);
  const auto x = RandomVec(&rng, 11);
  for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
    EXPECT_EQ(kd->cosine(zero.data(), x.data(), 11), kMaxCosineDistance);
    EXPECT_EQ(kd->cosine(x.data(), zero.data(), 11), kMaxCosineDistance);
    EXPECT_EQ(kd->cosine(zero.data(), zero.data(), 11), kMaxCosineDistance);
  }
  EXPECT_EQ(CosineDistanceFromDot(0.0f, 0.0f, 1.0f), kMaxCosineDistance);
}

// --------------------------------------------------------------- ScanTopK

TEST(DistanceKernelsTest, ScanTopKMatchesPairwiseKernels) {
  Rng rng(59);
  const size_t dim = 19, rows = 300;  // odd dim: every row ends in a tail
  std::vector<float> data;
  std::vector<float> norms;
  for (size_t r = 0; r < rows; ++r) {
    const auto v = RandomVec(&rng, dim);
    data.insert(data.end(), v.begin(), v.end());
  }
  const auto query = RandomVec(&rng, dim);
  for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
    norms.clear();
    for (size_t r = 0; r < rows; ++r) {
      norms.push_back(std::sqrt(kd->dot(data.data() + r * dim,
                                        data.data() + r * dim, dim)));
    }
    const float qnorm = std::sqrt(kd->dot(query.data(), query.data(), dim));
    for (Metric metric : {Metric::kCosine, Metric::kL2}) {
      // Reference: every pairwise distance, stably ordered by (dist, row).
      std::vector<std::pair<float, size_t>> ref;
      for (size_t r = 0; r < rows; ++r) {
        const float* row = data.data() + r * dim;
        const float dist =
            metric == Metric::kCosine
                ? CosineDistanceFromDot(kd->dot(query.data(), row, dim),
                                        norms[r], qnorm)
                : std::sqrt(kd->l2sq(query.data(), row, dim));
        ref.emplace_back(dist, r);
      }
      std::sort(ref.begin(), ref.end());
      for (size_t k : {1u, 7u, 64u, 300u, 500u}) {
        auto hits = ScanTopK(*kd, query.data(), data.data(), norms.data(),
                             rows, dim, metric, k);
        ASSERT_EQ(hits.size(), std::min<size_t>(k, rows));
        for (size_t i = 0; i < hits.size(); ++i) {
          EXPECT_EQ(hits[i].row, ref[i].second) << kd->name << " k=" << k;
          // The scan streams through the *_many kernels, whose accumulation
          // order may differ from the pairwise kernels — values agree within
          // the tolerance contract, not bit-exactly.
          ExpectWithinContract(hits[i].distance, ref[i].first);
        }
      }
    }
  }
}

TEST(DistanceKernelsTest, ScanTopKDegenerateInputs) {
  const std::vector<float> query = {1.0f, 0.0f};
  EXPECT_TRUE(
      ScanTopK(query.data(), nullptr, nullptr, 0, 2, Metric::kL2, 5).empty());
  const std::vector<float> rows = {0.5f, 0.5f};
  EXPECT_TRUE(
      ScanTopK(query.data(), rows.data(), nullptr, 1, 2, Metric::kL2, 0)
          .empty());
}

// --------------------------------------------- multi-query (mini-GEMM)

TEST(DistanceKernelsTest, MultiKernelsBitIdenticalToSingleQueryBatch) {
  // The documented multi-kernel contract: out[q * rows + r] is
  // BIT-IDENTICAL to what the same dispatch's single-query batch kernel
  // returns for (query q, row r) — the register tiling may reorder rows
  // and queries but never an accumulation. Row counts 1..9 cover the
  // 4-row tile and every remainder; query counts 1..5 cover the 2-query
  // tile, its odd-query remainder, and the degenerate single query.
  Rng rng(211);
  const std::vector<size_t> dims = {1, 3, 5, 7, 8, 9, 16, 19, 64, 65, 127};
  for (size_t dim : dims) {
    for (size_t rows : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u}) {
      std::vector<float> data;
      for (size_t r = 0; r < rows; ++r) {
        const auto v = RandomVec(&rng, dim);
        data.insert(data.end(), v.begin(), v.end());
      }
      const auto codes = RandomCodes(&rng, rows * dim);
      for (size_t nq : {1u, 2u, 3u, 4u, 5u}) {
        std::vector<float> queries;
        for (size_t q = 0; q < nq; ++q) {
          const auto v = RandomVec(&rng, dim);
          queries.insert(queries.end(), v.begin(), v.end());
        }
        for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
          std::vector<float> multi(nq * rows), single(rows);
          kd->dot_multi(queries.data(), nq, data.data(), rows, dim,
                        multi.data());
          for (size_t q = 0; q < nq; ++q) {
            kd->dot_many(queries.data() + q * dim, data.data(), rows, dim,
                         single.data());
            for (size_t r = 0; r < rows; ++r) {
              EXPECT_EQ(multi[q * rows + r], single[r])
                  << kd->name << " dot dim=" << dim << " rows=" << rows
                  << " nq=" << nq << " q=" << q << " r=" << r;
            }
          }
          kd->l2sq_multi(queries.data(), nq, data.data(), rows, dim,
                         multi.data());
          for (size_t q = 0; q < nq; ++q) {
            kd->l2sq_many(queries.data() + q * dim, data.data(), rows, dim,
                          single.data());
            for (size_t r = 0; r < rows; ++r) {
              EXPECT_EQ(multi[q * rows + r], single[r])
                  << kd->name << " l2sq dim=" << dim << " rows=" << rows
                  << " nq=" << nq << " q=" << q << " r=" << r;
            }
          }
          kd->dot_multi_sq8(queries.data(), nq, codes.data(), rows, dim,
                            multi.data());
          for (size_t q = 0; q < nq; ++q) {
            kd->dot_many_sq8(queries.data() + q * dim, codes.data(), rows,
                             dim, single.data());
            for (size_t r = 0; r < rows; ++r) {
              EXPECT_EQ(multi[q * rows + r], single[r])
                  << kd->name << " dot_sq8 dim=" << dim << " rows=" << rows
                  << " nq=" << nq << " q=" << q << " r=" << r;
            }
          }
          kd->l2sq_multi_sq8(queries.data(), nq, codes.data(), rows, dim,
                             multi.data());
          for (size_t q = 0; q < nq; ++q) {
            kd->l2sq_many_sq8(queries.data() + q * dim, codes.data(), rows,
                              dim, single.data());
            for (size_t r = 0; r < rows; ++r) {
              EXPECT_EQ(multi[q * rows + r], single[r])
                  << kd->name << " l2sq_sq8 dim=" << dim << " rows=" << rows
                  << " nq=" << nq << " q=" << q << " r=" << r;
            }
          }
        }
      }
    }
  }
}

TEST(DistanceKernelsTest, ScanTopKMultiBitIdenticalToPerQueryScan) {
  // The whole point of the multi scan: the batch path may not change ANY
  // answer. 600 rows crosses the 512-row block boundary; dims include
  // sub-8 tails; a zero-norm row exercises kMaxCosineDistance ranking.
  Rng rng(223);
  for (size_t dim : {5u, 19u, 64u}) {
    const size_t rows = 600;
    std::vector<float> data;
    for (size_t r = 0; r < rows; ++r) {
      const auto v = RandomVec(&rng, dim);
      data.insert(data.end(), v.begin(), v.end());
    }
    std::fill(data.begin() + 17 * dim, data.begin() + 18 * dim, 0.0f);
    for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
      std::vector<float> norms;
      for (size_t r = 0; r < rows; ++r) {
        norms.push_back(std::sqrt(
            kd->dot(data.data() + r * dim, data.data() + r * dim, dim)));
      }
      for (Metric metric : {Metric::kCosine, Metric::kL2}) {
        for (size_t nq : {1u, 3u, 4u, 5u}) {
          std::vector<float> queries;
          for (size_t q = 0; q < nq; ++q) {
            const auto v = RandomVec(&rng, dim);
            queries.insert(queries.end(), v.begin(), v.end());
          }
          auto multi = ScanTopKMulti(*kd, queries.data(), nq, data.data(),
                                     norms.data(), rows, dim, metric, 10);
          ASSERT_EQ(multi.size(), nq);
          for (size_t q = 0; q < nq; ++q) {
            auto single = ScanTopK(*kd, queries.data() + q * dim, data.data(),
                                   norms.data(), rows, dim, metric, 10);
            ASSERT_EQ(multi[q].size(), single.size());
            for (size_t i = 0; i < single.size(); ++i) {
              EXPECT_EQ(multi[q][i].row, single[i].row)
                  << kd->name << " dim=" << dim << " nq=" << nq << " q=" << q;
              EXPECT_EQ(multi[q][i].distance, single[i].distance)
                  << kd->name << " dim=" << dim << " nq=" << nq << " q=" << q;
            }
          }
        }
      }
    }
  }
}

TEST(DistanceKernelsTest, ScanTopKMultiSq8BitIdenticalToPerQueryScan) {
  // Same contract through the quantized pipeline: candidate selection and
  // the exact rescore must be unaffected by batching.
  Rng rng(227);
  for (size_t dim : {5u, 19u, 64u}) {
    const size_t rows = 600;
    std::vector<float> data;
    for (size_t r = 0; r < rows; ++r) {
      const auto v = RandomVec(&rng, dim);
      data.insert(data.end(), v.begin(), v.end());
    }
    const Sq8Codec codec = Sq8Codec::Train(data.data(), rows, dim);
    std::vector<uint8_t> codes(rows * dim);
    std::vector<float> norms(rows);
    for (size_t r = 0; r < rows; ++r) {
      codec.EncodeRow(data.data() + r * dim, codes.data() + r * dim);
      norms[r] = codec.DecodedNorm(codes.data() + r * dim);
    }
    for (const KernelDispatch* kd : {&ScalarKernels(), &BestKernels()}) {
      for (Metric metric : {Metric::kCosine, Metric::kL2}) {
        for (size_t nq : {1u, 3u, 4u, 5u}) {
          std::vector<float> queries;
          for (size_t q = 0; q < nq; ++q) {
            const auto v = RandomVec(&rng, dim);
            queries.insert(queries.end(), v.begin(), v.end());
          }
          auto multi =
              ScanTopKMultiSq8(*kd, queries.data(), nq, codes.data(), codec,
                               norms.data(), rows, metric, 10);
          ASSERT_EQ(multi.size(), nq);
          for (size_t q = 0; q < nq; ++q) {
            auto single =
                ScanTopKSq8(*kd, queries.data() + q * dim, codes.data(),
                            codec, norms.data(), rows, metric, 10);
            ASSERT_EQ(multi[q].size(), single.size());
            for (size_t i = 0; i < single.size(); ++i) {
              EXPECT_EQ(multi[q][i].row, single[i].row)
                  << kd->name << " dim=" << dim << " nq=" << nq << " q=" << q;
              EXPECT_EQ(multi[q][i].distance, single[i].distance)
                  << kd->name << " dim=" << dim << " nq=" << nq << " q=" << q;
            }
          }
        }
      }
    }
  }
}

TEST(DistanceKernelsTest, KnnSearchBatchBitIdenticalToPerQuerySearch) {
  // The index-level seam over the multi scan: SearchBatch must return, per
  // query, exactly what Search returns — with or without a pool, for both
  // storage modes, and a wrong-dimension query keeps its empty slot.
  Rng rng(229);
  const size_t dim = 19, rows = 200;
  ThreadPool pool(3);
  for (Storage storage : {Storage::kFloat32, Storage::kSq8}) {
    for (Metric metric : {Metric::kCosine, Metric::kL2}) {
      KnnIndex index(dim, metric, storage);
      for (size_t r = 0; r < rows; ++r) index.Add(r * 7, RandomVec(&rng, dim));
      std::vector<std::vector<float>> queries;
      for (size_t q = 0; q < 11; ++q) queries.push_back(RandomVec(&rng, dim));
      queries[4] = RandomVec(&rng, dim - 1);  // wrong dim: empty slot
      for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
        auto batch = index.SearchBatch(queries, 10, p);
        ASSERT_EQ(batch.size(), queries.size());
        for (size_t q = 0; q < queries.size(); ++q) {
          EXPECT_EQ(batch[q], index.Search(queries[q], 10)) << "q=" << q;
        }
        EXPECT_TRUE(batch[4].empty());
      }
    }
  }
}

// ------------------------------------------------------------- dispatch

TEST(DistanceKernelsTest, DispatchSelectsAKnownSet) {
  EXPECT_STREQ(ScalarKernels().name, "scalar");
  const std::string active = Kernels().name;
  EXPECT_TRUE(active == "scalar" || active == "avx2-fma" || active == "neon")
      << active;
  const std::string best = BestKernels().name;
  EXPECT_TRUE(best == "scalar" || best == "avx2-fma" || best == "neon");
  // Under the LAKS_FORCE_SCALAR CI leg the process-wide selection must be
  // scalar even though BestKernels may still name a SIMD set.
  const char* force = std::getenv("LAKS_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    EXPECT_STREQ(Kernels().name, "scalar");
  }
}

// -------------------------------------------------- end-to-end parity

// One lake corpus shared by the parity tests: odd dim (tail lanes on every
// row) and a couple of zero-norm columns to exercise the max-distance rule
// through the whole ranking stack.
struct LakeFixture {
  static constexpr size_t kDim = 19;
  std::vector<std::vector<std::vector<float>>> tables;
  std::vector<std::vector<float>> join_queries;
  std::vector<std::vector<std::vector<float>>> union_queries;

  LakeFixture() {
    Rng rng(61);
    for (size_t t = 0; t < 120; ++t) {
      std::vector<std::vector<float>> cols(1 + t % 3);
      for (auto& col : cols) col = RandomVec(&rng, kDim);
      if (t % 40 == 7) cols[0].assign(kDim, 0.0f);  // zero-norm column
      tables.push_back(std::move(cols));
    }
    for (size_t q = 0; q < 12; ++q) {
      join_queries.push_back(RandomVec(&rng, kDim));
      union_queries.push_back({RandomVec(&rng, kDim), RandomVec(&rng, kDim)});
    }
  }
};

ShardedLakeIndex BuildLake(const LakeFixture& f, size_t shards,
                           const IndexOptions& options) {
  ShardedLakeIndex lake(LakeFixture::kDim, shards, options);
  for (size_t t = 0; t < f.tables.size(); ++t) {
    lake.AddTable("table_" + std::to_string(t), f.tables[t]);
  }
  return lake;
}

TEST(DistanceKernelsTest, FlatLakeResultsIdenticalScalarVsSimd) {
  const LakeFixture f;
  for (size_t shards : {1u, 4u}) {
    const auto lake = BuildLake(f, shards, IndexOptions{});
    std::vector<std::vector<std::string>> scalar_join, simd_join;
    std::vector<std::vector<std::string>> scalar_union, simd_union;
    {
      ScopedKernels pin(ScalarKernels());
      for (const auto& q : f.join_queries) {
        scalar_join.push_back(lake.QueryJoinable(q, 10));
      }
      for (const auto& q : f.union_queries) {
        scalar_union.push_back(lake.QueryUnionable(q, 10));
      }
    }
    {
      ScopedKernels pin(BestKernels());
      for (const auto& q : f.join_queries) {
        simd_join.push_back(lake.QueryJoinable(q, 10));
      }
      for (const auto& q : f.union_queries) {
        simd_union.push_back(lake.QueryUnionable(q, 10));
      }
    }
    EXPECT_EQ(scalar_join, simd_join) << "shards=" << shards;
    EXPECT_EQ(scalar_union, simd_union) << "shards=" << shards;
  }
}

TEST(DistanceKernelsTest, Sq8LakeResultsIdenticalScalarVsSimd) {
  // Same corpus and queries as the float parity test, but with sq8 shards:
  // candidate selection runs through the asymmetric u8 kernels and the
  // rescore through the float pairwise kernels, and the ranked ids must
  // still not depend on which ISA produced them.
  const LakeFixture f;
  IndexOptions options;
  options.storage = Storage::kSq8;
  for (size_t shards : {1u, 4u}) {
    const auto lake = BuildLake(f, shards, options);
    std::vector<std::vector<std::string>> scalar_join, simd_join;
    std::vector<std::vector<std::string>> scalar_union, simd_union;
    {
      ScopedKernels pin(ScalarKernels());
      for (const auto& q : f.join_queries) {
        scalar_join.push_back(lake.QueryJoinable(q, 10));
      }
      for (const auto& q : f.union_queries) {
        scalar_union.push_back(lake.QueryUnionable(q, 10));
      }
    }
    {
      ScopedKernels pin(BestKernels());
      for (const auto& q : f.join_queries) {
        simd_join.push_back(lake.QueryJoinable(q, 10));
      }
      for (const auto& q : f.union_queries) {
        simd_union.push_back(lake.QueryUnionable(q, 10));
      }
    }
    EXPECT_EQ(scalar_join, simd_join) << "shards=" << shards;
    EXPECT_EQ(scalar_union, simd_union) << "shards=" << shards;
  }
}

TEST(DistanceKernelsTest, HnswRecallUnchangedScalarVsSimd) {
  const LakeFixture f;
  // One flat and one HNSW column index over the same corpus; recall@10 of
  // the graph against the exact scan must not depend on the kernel set.
  IndexOptions flat_opt;
  IndexOptions hnsw_opt;
  hnsw_opt.backend = IndexBackend::kHnsw;
  auto flat = MakeVectorIndex(LakeFixture::kDim, flat_opt);
  auto hnsw = MakeVectorIndex(LakeFixture::kDim, hnsw_opt);
  size_t next = 0;
  for (const auto& table : f.tables) {
    for (const auto& col : table) {
      flat->Add(next, col);
      hnsw->Add(next, col);
      ++next;
    }
  }
  auto recall_at_10 = [&](const KernelDispatch& kernels) {
    ScopedKernels pin(kernels);
    double sum = 0.0;
    for (const auto& q : f.join_queries) {
      std::unordered_set<size_t> gold;
      for (const auto& [p, d] : flat->Search(q, 10)) gold.insert(p);
      size_t hits = 0;
      for (const auto& [p, d] : hnsw->Search(q, 10)) hits += gold.count(p);
      sum += static_cast<double>(hits) / static_cast<double>(gold.size());
    }
    return sum / static_cast<double>(f.join_queries.size());
  };
  const double scalar_recall = recall_at_10(ScalarKernels());
  const double simd_recall = recall_at_10(BestKernels());
  EXPECT_GE(scalar_recall, 0.9);
  EXPECT_EQ(scalar_recall, simd_recall);
}

}  // namespace
}  // namespace tsfm::search
