// LakeServer end-to-end suite: concurrent clients must get results
// bit-identical to direct ShardedLakeIndex calls, graceful shutdown must
// drain every accepted request, and every fault-injection case (truncated /
// oversized / garbage frames, wrong-dim queries, mid-request disconnects)
// must end in a Status error response or a clean close — never a crash,
// hang, or leaked thread.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "search/sharded_lake_index.h"
#include "search/stream_io.h"
#include "server/lake_client.h"
#include "server/lake_server.h"
#include "util/random.h"

namespace tsfm::server {
namespace {

using search::IndexOptions;
using search::ShardedLakeIndex;

std::vector<float> RandomVec(size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Normal());
  return v;
}

struct Corpus {
  std::vector<std::string> ids;
  std::vector<std::vector<std::vector<float>>> tables;
  std::vector<std::vector<float>> join_queries;
  std::vector<std::vector<std::vector<float>>> union_queries;
};

Corpus MakeCorpus(size_t num_tables, size_t dim, uint64_t seed) {
  Corpus corpus;
  Rng rng(seed);
  for (size_t t = 0; t < num_tables; ++t) {
    corpus.ids.push_back("table_" + std::to_string(t));
    std::vector<std::vector<float>> cols(1 + t % 3);
    for (auto& col : cols) col = RandomVec(dim, &rng);
    corpus.tables.push_back(std::move(cols));
  }
  for (size_t q = 0; q < 12; ++q) {
    corpus.join_queries.push_back(RandomVec(dim, &rng));
    corpus.union_queries.push_back({RandomVec(dim, &rng), RandomVec(dim, &rng)});
  }
  return corpus;
}

ShardedLakeIndex BuildIndex(const Corpus& corpus, size_t dim, size_t shards) {
  ShardedLakeIndex index(dim, shards, IndexOptions{});
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  return index;
}

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/tsfm_lake_server_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// Server + identical reference index over the same corpus; flat backend, so
// served results must be bit-identical to direct calls.
class LakeServerTest : public testing::Test {
 protected:
  static constexpr size_t kDim = 16;
  static constexpr size_t kShards = 3;

  void StartServer(ServerOptions options = {}) {
    corpus_ = MakeCorpus(60, kDim, 7);
    reference_ = std::make_unique<ShardedLakeIndex>(
        BuildIndex(corpus_, kDim, kShards));
    server_ = std::make_unique<LakeServer>(BuildIndex(corpus_, kDim, kShards),
                                           options);
    socket_path_ = UniqueSocketPath();
    ASSERT_TRUE(server_->Start(socket_path_).ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    ::unlink(socket_path_.c_str());
  }

  // Opens a raw connection for hand-crafted (mal)formed traffic.
  int RawConnect() {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  }

  // The server must still answer correctly — the liveness probe every
  // fault-injection test ends with.
  void ExpectServerStillServes() {
    LakeClient client;
    ASSERT_TRUE(client.Connect(socket_path_).ok());
    auto got = client.QueryJoinable(corpus_.join_queries[0], 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(),
              reference_->QueryJoinable(corpus_.join_queries[0], 5));
  }

  Corpus corpus_;
  std::unique_ptr<ShardedLakeIndex> reference_;
  std::unique_ptr<LakeServer> server_;
  std::string socket_path_;
};

// ------------------------------------------------------------------ parity

TEST_F(LakeServerTest, ServesJoinAndUnionIdenticallyToDirectCalls) {
  StartServer();
  LakeClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  for (size_t k : {size_t{1}, size_t{5}, size_t{100}}) {
    for (const auto& q : corpus_.join_queries) {
      auto got = client.QueryJoinable(q, k);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value(), reference_->QueryJoinable(q, k));
    }
    for (const auto& q : corpus_.union_queries) {
      auto got = client.QueryUnionable(q, k);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value(), reference_->QueryUnionable(q, k));
    }
  }
}

TEST_F(LakeServerTest, ZeroKAndZeroColumnQueriesMatchDirectCalls) {
  StartServer();
  LakeClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());

  auto zero_k = client.QueryJoinable(corpus_.join_queries[0], 0);
  ASSERT_TRUE(zero_k.ok());
  EXPECT_EQ(zero_k.value(), reference_->QueryJoinable(corpus_.join_queries[0], 0));
  EXPECT_TRUE(zero_k.value().empty());

  auto zero_cols = client.QueryUnionable({}, 5);
  ASSERT_TRUE(zero_cols.ok());
  EXPECT_EQ(zero_cols.value(), reference_->QueryUnionable({}, 5));
}

TEST_F(LakeServerTest, ConcurrentClientsGetBitIdenticalResults) {
  ServerOptions options;
  options.io_threads = 10;  // one handler per client; none queue behind another
  StartServer(options);
  constexpr size_t kClients = 10;
  constexpr size_t kRounds = 15;

  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LakeClient client;
      if (!client.Connect(socket_path_).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t r = 0; r < kRounds; ++r) {
        // Interleave ops and stagger queries/ks so concurrent in-flight
        // batches mix shapes.
        size_t k = 1 + (c + r) % 7;
        const auto& jq = corpus_.join_queries[(c + r) % corpus_.join_queries.size()];
        const auto& uq =
            corpus_.union_queries[(c + 2 * r) % corpus_.union_queries.size()];
        auto join = client.QueryJoinable(jq, k);
        auto join_union = client.QueryUnionable(uq, k);
        if (!join.ok() || join.value() != reference_->QueryJoinable(jq, k) ||
            !join_union.ok() ||
            join_union.value() != reference_->QueryUnionable(uq, k)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);

  LakeClient stats_client;
  ASSERT_TRUE(stats_client.Connect(socket_path_).ok());
  auto stats = stats_client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().requests, kClients * kRounds * 2);
  EXPECT_GE(stats.value().batches, 1u);
  EXPECT_LE(stats.value().batches, stats.value().requests);
  EXPECT_GE(stats.value().max_batch, 1u);
  EXPECT_GE(stats.value().total_latency_ms, 0.0);
  EXPECT_GE(stats.value().total_queue_wait_ms, 0.0);
}

// ---------------------------------------------------------------- shutdown

TEST_F(LakeServerTest, GracefulShutdownDrainsWithoutDroppingAcceptedRequests) {
  ServerOptions options;
  options.io_threads = 8;
  StartServer(options);
  constexpr size_t kClients = 8;

  // Clients hammer queries until the server goes away. Every response that
  // does arrive must be correct; after the first transport error the
  // connection is dead and the thread exits. A request the server accepted
  // (read off the wire) but then dropped would surface as a wrong/missing
  // response before the close, failing the parity check.
  std::atomic<size_t> failures{0};
  std::atomic<size_t> answered{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LakeClient client;
      if (!client.Connect(socket_path_).ok()) return;
      while (!go.load()) std::this_thread::yield();
      for (size_t r = 0;; ++r) {
        size_t k = 1 + r % 5;
        const auto& jq = corpus_.join_queries[(c + r) % corpus_.join_queries.size()];
        auto got = client.QueryJoinable(jq, k);
        if (!got.ok()) break;  // server closed while draining: clean end
        answered.fetch_add(1);
        if (got.value() != reference_->QueryJoinable(jq, k)) {
          failures.fetch_add(1);
          break;
        }
      }
    });
  }
  go.store(true);
  // Let the clients get some requests in flight, then pull the plug.
  while (answered.load() < kClients * 3) std::this_thread::yield();
  server_->Stop();
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(answered.load(), kClients * 3);
  EXPECT_FALSE(server_->running());

  // New connections must be refused once stopped.
  LakeClient late;
  EXPECT_FALSE(late.Connect(socket_path_).ok());
}

TEST_F(LakeServerTest, StopIsIdempotentAndSecondStartIsRejected) {
  StartServer();
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(server_->Start(UniqueSocketPath()).ok());
}

// --------------------------------------------------------- fault injection

TEST_F(LakeServerTest, TruncatedFramePayloadGetsCleanCloseNotCrash) {
  StartServer();
  int fd = RawConnect();
  uint32_t claimed = 100;
  ASSERT_EQ(::send(fd, &claimed, sizeof(claimed), 0),
            static_cast<ssize_t>(sizeof(claimed)));
  ASSERT_EQ(::send(fd, "short", 5, 0), 5);  // 5 of the promised 100 bytes
  ::close(fd);
  ExpectServerStillServes();
}

TEST_F(LakeServerTest, TruncatedLengthPrefixGetsCleanCloseNotCrash) {
  StartServer();
  int fd = RawConnect();
  ASSERT_EQ(::send(fd, "\x02", 1, 0), 1);  // 1 of the 4 prefix bytes
  ::close(fd);
  ExpectServerStillServes();
}

TEST_F(LakeServerTest, OversizedLengthPrefixGetsStatusErrorResponse) {
  ServerOptions options;
  options.max_frame_bytes = 4096;
  StartServer(options);
  int fd = RawConnect();
  uint32_t huge = 1u << 30;
  ASSERT_EQ(::send(fd, &huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));

  std::string payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  std::istringstream in(payload);
  Response response;
  ASSERT_TRUE(DecodeResponse(in, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOutOfRange);
  EXPECT_FALSE(response.message.empty());

  // The stream cannot be resynced after a bad prefix: server closes next.
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok());
  EXPECT_TRUE(clean_eof);
  ::close(fd);
  ExpectServerStillServes();
}

TEST_F(LakeServerTest, GarbageOpcodeGetsParseErrorAndConnectionSurvives) {
  StartServer();
  int fd = RawConnect();
  std::string garbage;
  garbage.push_back(static_cast<char>(kProtocolVersion));
  garbage.push_back(static_cast<char>(99));  // no such opcode
  ASSERT_TRUE(WriteFrame(fd, garbage).ok());

  std::string payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  std::istringstream in(payload);
  Response response;
  ASSERT_TRUE(DecodeResponse(in, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kParseError);

  // Frame boundaries survived, so the same connection still serves.
  Request good;
  good.op = Opcode::kJoin;
  good.k = 5;
  good.columns = {corpus_.join_queries[0]};
  ASSERT_TRUE(WriteFrame(fd, SerializeRequest(good)).ok());
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  std::istringstream in2(payload);
  ASSERT_TRUE(DecodeResponse(in2, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.ids, reference_->QueryJoinable(corpus_.join_queries[0], 5));
  ::close(fd);
}

TEST_F(LakeServerTest, HostileKInAValidFrameDoesNotKillTheServer) {
  StartServer();
  // ~80 wire bytes that pass every shape check but ask for 4 billion
  // results; an unclamped k would drive a multi-hundred-GB reserve in the
  // ranking stack and bad_alloc the dispatcher.
  int fd = RawConnect();
  Request greedy;
  greedy.op = Opcode::kJoin;
  greedy.k = 0xFFFFFFFFu;
  greedy.columns = {corpus_.join_queries[0]};
  ASSERT_TRUE(WriteFrame(fd, SerializeRequest(greedy)).ok());
  std::string payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  std::istringstream in(payload);
  Response response;
  ASSERT_TRUE(DecodeResponse(in, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kOk);
  // Clamped k returns every table ranked — identical to any k >= corpus.
  EXPECT_EQ(response.ids,
            reference_->QueryJoinable(corpus_.join_queries[0],
                                      corpus_.tables.size()));
  ::close(fd);
  ExpectServerStillServes();
}

TEST_F(LakeServerTest, TrailingBytesAfterValidRequestGetParseError) {
  StartServer();
  int fd = RawConnect();
  // Two messages smuggled into one frame must not be half-accepted: the
  // server would answer once and the client's accounting would desync.
  Request req;
  req.op = Opcode::kJoin;
  req.k = 5;
  req.columns = {corpus_.join_queries[0]};
  std::string doubled = SerializeRequest(req) + SerializeRequest(req);
  ASSERT_TRUE(WriteFrame(fd, doubled).ok());
  std::string payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  std::istringstream in(payload);
  Response response;
  ASSERT_TRUE(DecodeResponse(in, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kParseError);
  ::close(fd);
  ExpectServerStillServes();
}

TEST_F(LakeServerTest, WrongVersionByteGetsParseError) {
  StartServer();
  int fd = RawConnect();
  std::string frame;
  frame.push_back(static_cast<char>(kProtocolVersion + 1));
  frame.push_back(static_cast<char>(Opcode::kStats));
  ASSERT_TRUE(WriteFrame(fd, frame).ok());
  std::string payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  std::istringstream in(payload);
  Response response;
  ASSERT_TRUE(DecodeResponse(in, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kParseError);
  ::close(fd);
  ExpectServerStillServes();
}

TEST_F(LakeServerTest, WrongDimQueryGetsInvalidArgumentAndClientSurvives) {
  StartServer();
  LakeClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  auto bad = client.QueryJoinable(std::vector<float>(kDim + 3, 0.5f), 5);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // Server errors don't burn the connection; the same client recovers.
  auto good = client.QueryJoinable(corpus_.join_queries[0], 5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), reference_->QueryJoinable(corpus_.join_queries[0], 5));
}

TEST_F(LakeServerTest, JoinWithWrongColumnCountGetsInvalidArgument) {
  StartServer();
  int fd = RawConnect();
  Request bad;
  bad.op = Opcode::kJoin;
  bad.k = 5;
  bad.columns = {corpus_.join_queries[0], corpus_.join_queries[1]};
  ASSERT_TRUE(WriteFrame(fd, SerializeRequest(bad)).ok());
  std::string payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  std::istringstream in(payload);
  Response response;
  ASSERT_TRUE(DecodeResponse(in, &response).ok());
  EXPECT_EQ(response.status, StatusCode::kInvalidArgument);
  ::close(fd);
  ExpectServerStillServes();
}

TEST_F(LakeServerTest, MidRequestDisconnectDuringManyConnectionsNeverWedges) {
  StartServer();
  // A burst of clients that connect, send garbage or partial frames, and
  // vanish, racing real traffic. The server must keep serving throughout.
  std::vector<std::thread> chaos;
  for (int i = 0; i < 6; ++i) {
    chaos.emplace_back([&, i] {
      for (int r = 0; r < 10; ++r) {
        int fd = RawConnect();
        switch ((i + r) % 3) {
          case 0: {  // half a length prefix
            ::send(fd, "\x01\x02", 2, MSG_NOSIGNAL);
            break;
          }
          case 1: {  // prefix promising bytes that never come
            uint32_t claimed = 64;
            ::send(fd, &claimed, sizeof(claimed), MSG_NOSIGNAL);
            break;
          }
          case 2: {  // valid request, gone before reading the response
            Request req;
            req.op = Opcode::kJoin;
            req.k = 3;
            req.columns = {corpus_.join_queries[0]};
            // Ignorable: this client is simulating a peer that vanishes
            // mid-conversation; whether the final write even lands is part
            // of the chaos being injected.
            (void)WriteFrame(fd, SerializeRequest(req));
            break;
          }
        }
        ::close(fd);
      }
    });
  }
  for (int r = 0; r < 5; ++r) ExpectServerStillServes();
  for (auto& t : chaos) t.join();
  ExpectServerStillServes();
}

}  // namespace
}  // namespace tsfm::server
