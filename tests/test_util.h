// Shared helpers for the test suites: seeded random vector/table
// generators, a temp-file RAII that also sweeps shard side files, and the
// tie-aware recall@k used by the ANN acceptance bars. Header-only on
// purpose — the test binaries are built one .cc at a time.
#ifndef TSFM_TESTS_TEST_UTIL_H_
#define TSFM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/random.h"

namespace tsfm::testutil {

inline std::vector<float> RandomVec(Rng* rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Normal());
  return v;
}

inline std::vector<float> RandomRows(Rng* rng, size_t rows, size_t dim) {
  std::vector<float> data;
  data.reserve(rows * dim);
  for (size_t r = 0; r < rows * dim; ++r) {
    data.push_back(static_cast<float>(rng->Normal()));
  }
  return data;
}

/// A deterministic lake corpus: tables with 1..3 columns each, plus
/// ready-made join and union queries drawn from the same seed.
struct Corpus {
  std::vector<std::string> ids;
  std::vector<std::vector<std::vector<float>>> tables;  // per table: columns
  std::vector<std::vector<float>> join_queries;
  std::vector<std::vector<std::vector<float>>> union_queries;
};

inline Corpus MakeCorpus(size_t num_tables, size_t dim, uint64_t seed,
                         size_t num_queries = 10) {
  Corpus corpus;
  Rng rng(seed);
  for (size_t t = 0; t < num_tables; ++t) {
    corpus.ids.push_back("table_" + std::to_string(t));
    std::vector<std::vector<float>> cols(1 + t % 3);
    for (auto& col : cols) col = RandomVec(&rng, dim);
    corpus.tables.push_back(std::move(cols));
  }
  for (size_t q = 0; q < num_queries; ++q) {
    corpus.join_queries.push_back(RandomVec(&rng, dim));
    corpus.union_queries.push_back(
        {RandomVec(&rng, dim), RandomVec(&rng, dim)});
  }
  return corpus;
}

/// \brief A path under gtest's temp dir, removed on scope exit along with
/// any side files that share its name as a prefix (lake shard files are
/// named `<path>.shard-N`, so one TempFile sweeps a whole saved lake).
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path target(path_);
    fs::remove(target, ec);
    const std::string prefix = target.filename().string() + ".";
    for (const auto& entry : fs::directory_iterator(target.parent_path(), ec)) {
      if (entry.path().filename().string().rfind(prefix, 0) == 0) {
        fs::remove(entry.path(), ec);
      }
    }
  }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// \brief Tie-aware recall@k: the fraction of `ranked`'s first k entries
/// that appear anywhere in `gold`.
///
/// Callers pass a `gold` list that may be *longer* than k (every id whose
/// distance ties the k-th) so an approximate index is not penalized for
/// resolving a tie differently than the exact one.
inline double RecallAtK(const std::vector<std::string>& gold,
                        const std::vector<std::string>& ranked, size_t k) {
  const std::unordered_set<std::string> gold_set(gold.begin(), gold.end());
  size_t hits = 0;
  const size_t take = std::min(k, ranked.size());
  for (size_t i = 0; i < take; ++i) hits += gold_set.count(ranked[i]);
  return k == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace tsfm::testutil

#endif  // TSFM_TESTS_TEST_UTIL_H_
