#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "lakebench/search_benchmarks.h"
#include "search/knn_index.h"
#include "search/metrics.h"
#include "search/pipeline.h"
#include "search/table_ranker.h"
#include "search/vector_index.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tsfm::search {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, WeightedF1PerfectAndWorst) {
  std::vector<int> t = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(WeightedF1(t, t, 2), 1.0);
  std::vector<int> wrong = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(WeightedF1(t, wrong, 2), 0.0);
}

TEST(MetricsTest, WeightedF1HandlesSkew) {
  // 3:1 skew; predicting all-majority gives the weighted F1 of sklearn.
  std::vector<int> t = {0, 0, 0, 1};
  std::vector<int> p = {0, 0, 0, 0};
  // class0: P=3/4, R=1, F1=6/7, weight 3/4; class1: F1=0, weight 1/4.
  EXPECT_NEAR(WeightedF1(t, p, 2), (6.0 / 7.0) * 0.75, 1e-9);
}

TEST(MetricsTest, R2KnownValues) {
  std::vector<float> t = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(R2Score(t, t), 1.0);
  std::vector<float> mean_pred = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(R2Score(t, mean_pred), 0.0, 1e-9);
  std::vector<float> bad = {4, 3, 2, 1};
  EXPECT_LT(R2Score(t, bad), 0.0);
}

TEST(MetricsTest, MultiLabelF1) {
  std::vector<std::vector<float>> t = {{1, 0, 1}, {0, 1, 0}};
  EXPECT_DOUBLE_EQ(MultiLabelF1(t, t), 1.0);
  std::vector<std::vector<float>> half = {{1, 0, 0}, {0, 1, 0}};
  // tp=2, fn=1, fp=0 -> P=1, R=2/3, F1=0.8.
  EXPECT_NEAR(MultiLabelF1(t, half), 0.8, 1e-9);
}

TEST(MetricsTest, MetricsAtKBasics) {
  std::vector<size_t> ranked = {5, 3, 9, 1};
  std::vector<size_t> gold = {3, 9};
  RankedMetrics m = MetricsAtK(ranked, gold, 2);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);  // {5,3}: one hit of 2
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  m = MetricsAtK(ranked, gold, 3);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.f1, 2 * (2.0 / 3) * 1.0 / ((2.0 / 3) + 1.0), 1e-9);
}

TEST(MetricsTest, EvaluateSearchAveragesAndSkipsEmptyGold) {
  std::vector<std::vector<size_t>> ranked = {{1, 2}, {9, 8}};
  std::vector<std::vector<size_t>> gold = {{1}, {}};  // 2nd query skipped
  SearchReport r = EvaluateSearch(ranked, gold, 2);
  EXPECT_DOUBLE_EQ(r.precision_at_k[0], 1.0);
  EXPECT_DOUBLE_EQ(r.recall_at_k[0], 1.0);
  EXPECT_GT(r.mean_f1, 0.5);
}

// -------------------------------------------------------------- KnnIndex

TEST(KnnIndexTest, CosineNearestFirst) {
  KnnIndex index(2, Metric::kCosine);
  index.Add(0, {1, 0});
  index.Add(1, {0, 1});
  index.Add(2, {0.9f, 0.1f});
  auto hits = index.Search({1, 0}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, 0u);
  EXPECT_EQ(hits[1].first, 2u);
  EXPECT_NEAR(hits[0].second, 0.0, 1e-6);
}

TEST(KnnIndexTest, L2Metric) {
  KnnIndex index(2, Metric::kL2);
  index.Add(10, {0, 0});
  index.Add(11, {3, 4});
  auto hits = index.Search({0, 1}, 2);
  EXPECT_EQ(hits[0].first, 10u);
  EXPECT_NEAR(hits[0].second, 1.0, 1e-6);
  EXPECT_NEAR(hits[1].second, std::sqrt(9 + 9), 1e-5);
}

TEST(KnnIndexTest, ZeroVectorGetsMaxCosineDistance) {
  // A zero-norm row has no direction: it must score kMaxCosineDistance and
  // rank strictly after every row that has one — the old denom guard gave
  // it distance 1.0, silently tying it with genuinely orthogonal rows.
  KnnIndex index(2, Metric::kCosine);
  index.Add(0, {0, 0});
  index.Add(1, {1, 1});
  index.Add(2, {-1, 1});  // orthogonal to the query: distance exactly 1
  auto hits = index.Search({1, 1}, 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].first, 1u);
  EXPECT_EQ(hits[1].first, 2u);
  EXPECT_NEAR(hits[1].second, 1.0, 1e-6);
  EXPECT_EQ(hits[2].first, 0u);
  EXPECT_EQ(hits[2].second, kMaxCosineDistance);
}

TEST(KnnIndexTest, ZeroQueryRanksEverythingAtMaxCosineDistance) {
  KnnIndex index(2, Metric::kCosine);
  index.Add(0, {1, 0});
  index.Add(1, {0, 1});
  auto hits = index.Search({0, 0}, 2);
  ASSERT_EQ(hits.size(), 2u);
  // Cosine is undefined against a zero query; results stay deterministic
  // (row order) with the max distance instead of fake ties at 1.0.
  EXPECT_EQ(hits[0].first, 0u);
  EXPECT_EQ(hits[0].second, kMaxCosineDistance);
  EXPECT_EQ(hits[1].second, kMaxCosineDistance);
}

TEST(KnnIndexTest, KLargerThanIndex) {
  KnnIndex index(1, Metric::kCosine);
  index.Add(0, {1});
  auto hits = index.Search({1}, 10);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(KnnIndexTest, DegenerateQueriesReturnEmpty) {
  KnnIndex index(2, Metric::kCosine);
  index.Add(0, {1, 0});
  EXPECT_TRUE(index.Search({1, 0}, 0).empty());        // k == 0
  EXPECT_TRUE(index.Search({1, 0, 0}, 3).empty());     // dim mismatch
  EXPECT_TRUE(index.Search({}, 3).empty());            // empty query
  KnnIndex empty(2);
  EXPECT_TRUE(empty.Search({1, 0}, 3).empty());        // empty index
}

TEST(KnnIndexTest, HeapTopKMatchesFullSortOrder) {
  Rng rng(9);
  KnnIndex index(4, Metric::kCosine);
  for (size_t i = 0; i < 200; ++i) {
    std::vector<float> v(4);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    index.Add(i, v);
  }
  std::vector<float> q = {1, 0, -1, 0.5f};
  // Retrieving everything gives the reference ranking; the top-k heap must
  // return its prefix, with deterministic tie order.
  auto all = index.Search(q, 200);
  ASSERT_EQ(all.size(), 200u);
  for (size_t k : {1u, 7u, 50u}) {
    auto topk = index.Search(q, k);
    ASSERT_EQ(topk.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(topk[i].first, all[i].first);
      EXPECT_FLOAT_EQ(topk[i].second, all[i].second);
    }
  }
}

// ------------------------------------------------------------ VectorIndex

TEST(VectorIndexTest, FactoryMakesRequestedBackend) {
  IndexOptions flat;
  auto flat_index = MakeVectorIndex(3, flat);
  EXPECT_EQ(flat_index->backend(), IndexBackend::kFlat);
  EXPECT_EQ(flat_index->dim(), 3u);
  IndexOptions hnsw;
  hnsw.backend = IndexBackend::kHnsw;
  auto hnsw_index = MakeVectorIndex(3, hnsw);
  EXPECT_EQ(hnsw_index->backend(), IndexBackend::kHnsw);
  EXPECT_EQ(hnsw_index->metric(), Metric::kCosine);
}

TEST(VectorIndexTest, SearchBatchMatchesSerialForBothBackends) {
  Rng rng(13);
  std::vector<std::vector<float>> corpus, queries;
  for (size_t i = 0; i < 150; ++i) {
    std::vector<float> v(8);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    corpus.push_back(v);
  }
  for (size_t q = 0; q < 9; ++q) {
    std::vector<float> v(8);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    queries.push_back(v);
  }
  ThreadPool pool(3);
  for (auto backend : {IndexBackend::kFlat, IndexBackend::kHnsw}) {
    IndexOptions options;
    options.backend = backend;
    auto index = MakeVectorIndex(8, options);
    for (size_t i = 0; i < corpus.size(); ++i) index->Add(i, corpus[i]);
    auto parallel = index->SearchBatch(queries, 5, &pool);
    ASSERT_EQ(parallel.size(), queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(parallel[q], index->Search(queries[q], 5));
    }
  }
}

TEST(VectorIndexTest, SaveLoadRoundTripBothBackends) {
  Rng rng(15);
  std::vector<std::vector<float>> corpus, queries;
  for (size_t i = 0; i < 80; ++i) {
    std::vector<float> v(6);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    corpus.push_back(v);
  }
  for (size_t q = 0; q < 5; ++q) {
    std::vector<float> v(6);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    queries.push_back(v);
  }
  for (auto backend : {IndexBackend::kFlat, IndexBackend::kHnsw}) {
    IndexOptions options;
    options.backend = backend;
    auto index = MakeVectorIndex(6, options);
    for (size_t i = 0; i < corpus.size(); ++i) index->Add(i, corpus[i]);

    std::stringstream stream;
    ASSERT_TRUE(index->Save(stream).ok());
    auto loaded = LoadVectorIndex(stream);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value()->backend(), backend);
    EXPECT_EQ(loaded.value()->size(), corpus.size());
    EXPECT_EQ(loaded.value()->dim(), 6u);
    for (const auto& q : queries) {
      EXPECT_EQ(loaded.value()->Search(q, 10), index->Search(q, 10));
    }
  }
}

TEST(VectorIndexTest, LoadRejectsGarbageStream) {
  std::stringstream stream("not an index at all");
  EXPECT_FALSE(LoadVectorIndex(stream).ok());
}

// ------------------------------------------------------------ TableRanker

TEST(TableRankerTest, Rank1CountsMatchedColumns) {
  // Table 100 matches both query columns, table 200 only one.
  ColumnEmbeddingIndex index(2);
  index.AddTable(100, {{1, 0}, {0, 1}});
  index.AddTable(200, {{1, 0}, {0.7f, 0.7f}});
  TableRanker ranker(&index);
  auto ranked = ranker.RankTables({{1, 0}, {0, 1}}, 2, /*exclude=*/999);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 100u);
}

TEST(TableRankerTest, ExcludesQueryTable) {
  ColumnEmbeddingIndex index(2);
  index.AddTable(1, {{1, 0}});
  index.AddTable(2, {{1, 0}});
  TableRanker ranker(&index);
  auto ranked = ranker.RankTables({{1, 0}}, 5, /*exclude=*/1);
  for (size_t t : ranked) EXPECT_NE(t, 1u);
}

TEST(TableRankerTest, ColumnModeRanksByNearestColumn) {
  ColumnEmbeddingIndex index(2);
  index.AddTable(1, {{1, 0}, {0, 1}});
  index.AddTable(2, {{0.6f, 0.8f}});
  TableRanker ranker(&index);
  auto ranked = ranker.RankTablesByColumn({1, 0}, 5, 99);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 1u);
}

TEST(TableRankerTest, BatchRankingMatchesSerial) {
  Rng rng(21);
  ColumnEmbeddingIndex index(4);
  for (size_t t = 0; t < 20; ++t) {
    std::vector<std::vector<float>> cols(2, std::vector<float>(4));
    for (auto& col : cols) {
      for (auto& x : col) x = static_cast<float>(rng.Normal());
    }
    index.AddTable(t, cols);
  }
  TableRanker ranker(&index);
  std::vector<std::vector<std::vector<float>>> union_queries;
  std::vector<std::vector<float>> join_queries;
  std::vector<size_t> excludes;
  for (size_t q = 0; q < 6; ++q) {
    std::vector<std::vector<float>> cols(2, std::vector<float>(4));
    for (auto& col : cols) {
      for (auto& x : col) x = static_cast<float>(rng.Normal());
    }
    join_queries.push_back(cols[0]);
    union_queries.push_back(cols);
    excludes.push_back(q);
  }
  ThreadPool pool(3);
  auto union_batch = ranker.RankTablesBatch(union_queries, 5, excludes, &pool);
  auto join_batch = ranker.RankTablesByColumnBatch(join_queries, 5, excludes, &pool);
  ASSERT_EQ(union_batch.size(), 6u);
  ASSERT_EQ(join_batch.size(), 6u);
  for (size_t q = 0; q < 6; ++q) {
    EXPECT_EQ(union_batch[q], ranker.RankTables(union_queries[q], 5, excludes[q]));
    EXPECT_EQ(join_batch[q],
              ranker.RankTablesByColumn(join_queries[q], 5, excludes[q]));
  }
}

TEST(TableRankerTest, HnswBackedIndexRanksLikeFlatOnSeparatedData) {
  // Two well-separated clusters: approximate search must agree with exact.
  IndexOptions options;
  options.backend = IndexBackend::kHnsw;
  ColumnEmbeddingIndex index(2, options);
  index.AddTable(1, {{1, 0}});
  index.AddTable(2, {{0, 1}});
  TableRanker ranker(&index);
  auto ranked = ranker.RankTablesByColumn({0.9f, 0.1f}, 5, SIZE_MAX);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 1u);
}

// --------------------------------------------------------------- Pipeline

TEST(PipelineTest, PerfectEmbeddingsGivePerfectSearch) {
  // Synthetic benchmark: 3 groups of 3 tables; "embedding" = one-hot of the
  // group, so search must be perfect.
  lakebench::SearchBenchmark bench;
  bench.name = "synthetic";
  for (int g = 0; g < 3; ++g) {
    for (int m = 0; m < 3; ++m) {
      Table t("g" + std::to_string(g) + "m" + std::to_string(m), "d");
      t.AddColumn("c", {"x"});
      bench.tables.push_back(std::move(t));
    }
  }
  for (int g = 0; g < 3; ++g) {
    lakebench::SearchQuery q;
    q.table_index = static_cast<size_t>(g * 3);
    bench.queries.push_back(q);
    bench.gold.push_back({static_cast<size_t>(g * 3 + 1),
                          static_cast<size_t>(g * 3 + 2)});
  }
  auto embed = [](size_t t) {
    std::vector<float> v(3, 0.0f);
    v[t / 3] = 1.0f;
    return std::vector<std::vector<float>>{v};
  };
  // The batch-parallel pipeline must be exact regardless of backend or
  // fan-out width on this separable corpus.
  for (auto backend : {IndexBackend::kFlat, IndexBackend::kHnsw}) {
    SearchRunOptions run;
    run.index.backend = backend;
    run.num_threads = 3;
    SearchReport report = EvaluateEmbeddingSearch(bench, embed, 2, run);
    EXPECT_DOUBLE_EQ(report.recall_at_k[1], 1.0);
    EXPECT_DOUBLE_EQ(report.precision_at_k[1], 1.0);
  }
}

TEST(PipelineTest, ShardedRunSearchMatchesUnsharded) {
  // The --shards knob routes RunSearch through ShardedLakeIndex; with the
  // exact flat backend the ranked lists must be identical at any shard
  // count, including the exclude-own-table handling.
  lakebench::SearchBenchmark bench;
  bench.name = "sharded-parity";
  for (int i = 0; i < 40; ++i) {
    Table t("t" + std::to_string(i), "d");
    t.AddColumn("c", {"x"});
    bench.tables.push_back(std::move(t));
  }
  for (size_t q = 0; q < 8; ++q) {
    lakebench::SearchQuery query;
    query.table_index = q * 4;
    query.column_index = q % 2 == 0 ? 0 : -1;  // mix join and union queries
    bench.queries.push_back(query);
    bench.gold.push_back({q * 4 + 1});
  }
  Rng rng(7);
  std::vector<std::vector<std::vector<float>>> embs(40);
  for (auto& e : embs) {
    e = {{static_cast<float>(rng.Normal()), static_cast<float>(rng.Normal()),
          static_cast<float>(rng.Normal()), static_cast<float>(rng.Normal())}};
  }
  auto embed = [&](size_t t) { return embs[t]; };

  SearchRunOptions unsharded;
  unsharded.num_threads = 2;
  auto reference = RunSearch(bench, embed, 5, unsharded);
  for (size_t shards : {size_t{2}, size_t{4}}) {
    SearchRunOptions run;
    run.num_threads = 2;
    run.shards = shards;
    EXPECT_EQ(RunSearch(bench, embed, 5, run), reference) << shards << " shards";
  }
}

TEST(PipelineTest, RandomEmbeddingsScoreLow) {
  lakebench::SearchBenchmark bench;
  bench.name = "random";
  for (int i = 0; i < 30; ++i) {
    Table t("t" + std::to_string(i), "d");
    t.AddColumn("c", {"x"});
    bench.tables.push_back(std::move(t));
  }
  lakebench::SearchQuery q;
  q.table_index = 0;
  bench.queries.push_back(q);
  bench.gold.push_back({1});  // single relevant table
  Rng rng(4);
  std::vector<std::vector<std::vector<float>>> embs(30);
  for (auto& e : embs) {
    e = {{static_cast<float>(rng.Normal()), static_cast<float>(rng.Normal()),
          static_cast<float>(rng.Normal())}};
  }
  auto embed = [&](size_t t) { return embs[t]; };
  SearchReport report = EvaluateEmbeddingSearch(bench, embed, 5);
  EXPECT_LT(report.mean_f1, 0.5);
}

}  // namespace
}  // namespace tsfm::search
