// Churn-parity property harness: a seeded randomized driver interleaves
// AddTable / RemoveTable / queries / Compact against a live lake and holds
// it to the churn-parity bar — after every compaction (and continuously
// for flat float32) the mutable lake must rank bit-identically to a lake
// rebuilt from scratch over the survivors in original insertion order.
// The same op script runs through all three deployments (in-process,
// LakeServer over a socket, distributed coordinator + shard workers)
// across {1,2,4} shards x {float32,sq8}, plus a concurrent
// query-during-compaction run on the pool.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "search/lake_manifest.h"
#include "search/sharded_lake_index.h"
#include "server/distributed_lake_index.h"
#include "server/lake_client.h"
#include "server/lake_server.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tsfm::search {
namespace {

using server::DistributedLakeIndex;
using server::LakeClient;
using server::LakeServer;
using testutil::Corpus;
using testutil::MakeCorpus;
using testutil::RandomVec;
using testutil::TempFile;

// ------------------------------------------------------------- the model
// A plain insertion log with alive flags: the oracle every deployment is
// compared against. Removal kills the newest live entry with the id —
// the same rule the lake implements.
struct Model {
  struct Entry {
    std::string id;
    std::vector<std::vector<float>> cols;
    bool alive = true;
  };
  std::vector<Entry> log;

  void Add(const std::string& id, std::vector<std::vector<float>> cols) {
    log.push_back({id, std::move(cols), true});
  }
  bool Remove(const std::string& id) {
    for (size_t i = log.size(); i-- > 0;) {
      if (log[i].alive && log[i].id == id) {
        log[i].alive = false;
        return true;
      }
    }
    return false;
  }
  std::vector<std::string> LiveIds() const {
    std::vector<std::string> ids;
    for (const auto& e : log) {
      if (e.alive) ids.push_back(e.id);
    }
    return ids;
  }
  /// A from-scratch rebuild over the survivors: the parity gold standard.
  ShardedLakeIndex Rebuild(size_t dim, size_t shards,
                           const IndexOptions& options) const {
    ShardedLakeIndex index(dim, shards, options);
    for (const auto& e : log) {
      if (e.alive) index.AddTable(e.id, e.cols);
    }
    return index;
  }
};

// ----------------------------------------------------------- the drivers
// One op interface, three deployments. Mutation calls ASSERT internally so
// a transport failure stops the run at the op that broke.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual void Add(const std::string& id,
                   const std::vector<std::vector<float>>& cols) = 0;
  virtual Status Remove(const std::string& id) = 0;
  virtual void Compact() = 0;
  virtual std::vector<std::string> Join(const std::vector<float>& q,
                                        size_t k) = 0;
  virtual std::vector<std::string> Union(
      const std::vector<std::vector<float>>& q, size_t k) = 0;
};

ShardedLakeIndex BuildSharded(const Corpus& corpus, size_t dim, size_t shards,
                              const IndexOptions& options) {
  ShardedLakeIndex index(dim, shards, options);
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    index.AddTable(corpus.ids[t], corpus.tables[t]);
  }
  return index;
}

class InProcessDriver : public Driver {
 public:
  InProcessDriver(const Corpus& corpus, size_t dim, size_t shards,
                  const IndexOptions& options)
      : index_(BuildSharded(corpus, dim, shards, options)) {
    index_.Seal();
  }
  void Add(const std::string& id,
           const std::vector<std::vector<float>>& cols) override {
    index_.AddTable(id, cols);
  }
  Status Remove(const std::string& id) override {
    return index_.RemoveTable(id);
  }
  void Compact() override { ASSERT_TRUE(index_.Compact().ok()); }
  std::vector<std::string> Join(const std::vector<float>& q,
                                size_t k) override {
    return index_.QueryJoinable(q, k);
  }
  std::vector<std::string> Union(const std::vector<std::vector<float>>& q,
                                 size_t k) override {
    return index_.QueryUnionable(q, k);
  }

 private:
  ShardedLakeIndex index_;
};

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/tsfm_churn_property_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

class ServerDriver : public Driver {
 public:
  ServerDriver(const Corpus& corpus, size_t dim, size_t shards,
               const IndexOptions& options)
      : server_(BuildSharded(corpus, dim, shards, options)),
        socket_(UniqueSocketPath()) {
    EXPECT_TRUE(server_.Start(socket_).ok());
    EXPECT_TRUE(client_.Connect(socket_).ok());
  }
  ~ServerDriver() override {
    server_.Stop();
    ::unlink(socket_.c_str());
  }
  void Add(const std::string& id,
           const std::vector<std::vector<float>>& cols) override {
    ASSERT_TRUE(client_.AddTable(id, cols).ok());
  }
  Status Remove(const std::string& id) override {
    return client_.RemoveTable(id);
  }
  void Compact() override { ASSERT_TRUE(client_.Compact().ok()); }
  std::vector<std::string> Join(const std::vector<float>& q,
                                size_t k) override {
    auto ranked = client_.QueryJoinable(q, k);
    EXPECT_TRUE(ranked.ok()) << ranked.status().ToString();
    return ranked.ok() ? std::move(ranked).value() : std::vector<std::string>{};
  }
  std::vector<std::string> Union(const std::vector<std::vector<float>>& q,
                                 size_t k) override {
    auto ranked = client_.QueryUnionable(q, k);
    EXPECT_TRUE(ranked.ok()) << ranked.status().ToString();
    return ranked.ok() ? std::move(ranked).value() : std::vector<std::string>{};
  }

 private:
  LakeServer server_;
  std::string socket_;
  LakeClient client_;
};

class DistributedDriver : public Driver {
 public:
  DistributedDriver(const Corpus& corpus, size_t dim, size_t shards,
                    const IndexOptions& options)
      : manifest_("churn_property_distributed.laks") {
    ShardedLakeIndex built = BuildSharded(corpus, dim, shards, options);
    EXPECT_TRUE(built.Save(manifest_.path()).ok());
    for (size_t s = 0; s < shards; ++s) {
      auto shard = ShardedLakeIndex::Load(
          LakeShardFileName(manifest_.path(), s));
      EXPECT_TRUE(shard.ok()) << shard.status().ToString();
      workers_.push_back(
          std::make_unique<LakeServer>(std::move(shard).value()));
      sockets_.push_back(UniqueSocketPath());
      EXPECT_TRUE(workers_.back()->Start(sockets_.back()).ok());
    }
    auto connected = DistributedLakeIndex::Connect(manifest_.path(), sockets_);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    coordinator_.emplace(std::move(connected).value());
  }
  ~DistributedDriver() override {
    coordinator_.reset();
    for (size_t s = 0; s < workers_.size(); ++s) {
      workers_[s]->Stop();
      ::unlink(sockets_[s].c_str());
    }
  }
  void Add(const std::string& id,
           const std::vector<std::vector<float>>& cols) override {
    ASSERT_TRUE(coordinator_->AddTable(id, cols).ok());
  }
  Status Remove(const std::string& id) override {
    return coordinator_->RemoveTable(id);
  }
  void Compact() override { ASSERT_TRUE(coordinator_->Compact().ok()); }
  std::vector<std::string> Join(const std::vector<float>& q,
                                size_t k) override {
    auto ranked = coordinator_->QueryJoinable(q, k);
    EXPECT_TRUE(ranked.ok()) << ranked.status().ToString();
    return ranked.ok() ? std::move(ranked).value() : std::vector<std::string>{};
  }
  std::vector<std::string> Union(const std::vector<std::vector<float>>& q,
                                 size_t k) override {
    auto ranked = coordinator_->QueryUnionable(q, k);
    EXPECT_TRUE(ranked.ok()) << ranked.status().ToString();
    return ranked.ok() ? std::move(ranked).value() : std::vector<std::string>{};
  }

 private:
  TempFile manifest_;
  std::vector<std::unique_ptr<LakeServer>> workers_;
  std::vector<std::string> sockets_;
  std::optional<DistributedLakeIndex> coordinator_;
};

// ---------------------------------------------------------- the property
constexpr size_t kDim = 8;
constexpr size_t kK = 5;
constexpr size_t kOps = 40;
constexpr size_t kBaseTables = 16;

void ExpectParity(Driver* driver, const Model& model, size_t shards,
                  const IndexOptions& options, const Corpus& probes,
                  const char* when) {
  ShardedLakeIndex gold = model.Rebuild(kDim, shards, options);
  for (const auto& q : probes.join_queries) {
    EXPECT_EQ(driver->Join(q, kK), gold.QueryJoinable(q, kK)) << when;
  }
  for (const auto& q : probes.union_queries) {
    EXPECT_EQ(driver->Union(q, kK), gold.QueryUnionable(q, kK)) << when;
  }
}

/// The core property run: seeded op script, oracle model, parity bar.
/// Flat float32 lakes are checked after *every* op (delta rows rank
/// through the identical kernel); sq8 lakes only once compaction folded
/// the float32 delta into the quantized base.
void RunChurnScript(Driver* driver, const Corpus& corpus, size_t shards,
                    const IndexOptions& options, uint64_t seed) {
  const bool continuous_parity = options.storage == Storage::kFloat32;
  Model model;
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    model.Add(corpus.ids[t], corpus.tables[t]);
  }
  Rng rng(seed);
  size_t next_table = corpus.tables.size();
  size_t compactions = 0;
  bool sq8_dirty = false;
  for (size_t op = 0; op < kOps; ++op) {
    SCOPED_TRACE("op " + std::to_string(op) + " seed " + std::to_string(seed));
    const double roll = rng.UniformDouble();
    if (roll < 0.35) {
      // Add — sometimes re-using a live id to exercise newest-live removal.
      const auto live = model.LiveIds();
      std::string id = (!live.empty() && rng.Bernoulli(0.2))
                           ? live[rng.Uniform(static_cast<uint32_t>(
                                 live.size()))]
                           : "prop_" + std::to_string(next_table++);
      std::vector<std::vector<float>> cols(1 + rng.Uniform(2));
      for (auto& col : cols) col = RandomVec(&rng, kDim);
      driver->Add(id, cols);
      model.Add(id, cols);
      sq8_dirty = true;
    } else if (roll < 0.60) {
      const auto live = model.LiveIds();
      if (live.empty()) continue;
      const std::string id =
          live[rng.Uniform(static_cast<uint32_t>(live.size()))];
      EXPECT_TRUE(driver->Remove(id).ok()) << id;
      EXPECT_TRUE(model.Remove(id));
      sq8_dirty = true;
    } else if (roll < 0.70) {
      // Removing an id that was never added (or already fully removed)
      // must be NotFound on every deployment — and must not poison state.
      const std::string ghost = "ghost_" + std::to_string(op);
      EXPECT_EQ(driver->Remove(ghost).code(), StatusCode::kNotFound);
    } else if (roll < 0.85) {
      if (continuous_parity || !sq8_dirty) {
        ExpectParity(driver, model, shards, options, corpus, "mid-script");
      }
    } else {
      driver->Compact();
      ++compactions;
      sq8_dirty = false;
      ExpectParity(driver, model, shards, options, corpus, "post-compaction");
    }
  }
  // Always end on the headline assertion: compact, then bit-identical
  // parity with the from-scratch rebuild.
  driver->Compact();
  ++compactions;
  ExpectParity(driver, model, shards, options, corpus, "final compaction");
  EXPECT_GE(compactions, 1u);
}

struct ChurnCase {
  size_t shards;
  Storage storage;
};

const ChurnCase kMatrix[] = {
    {1, Storage::kFloat32}, {2, Storage::kFloat32}, {4, Storage::kFloat32},
    {1, Storage::kSq8},     {2, Storage::kSq8},     {4, Storage::kSq8},
};

TEST(ChurnPropertyTest, InProcessLakeMatchesRebuildUnderChurn) {
  for (const auto& c : kMatrix) {
    SCOPED_TRACE(std::to_string(c.shards) + " shards, storage " +
                 std::to_string(static_cast<int>(c.storage)));
    IndexOptions options;
    options.storage = c.storage;
    Corpus corpus = MakeCorpus(kBaseTables, kDim, 60 + c.shards);
    InProcessDriver driver(corpus, kDim, c.shards, options);
    RunChurnScript(&driver, corpus, c.shards, options,
                   100 + c.shards * 10 + static_cast<uint64_t>(c.storage));
  }
}

TEST(ChurnPropertyTest, ServedLakeMatchesRebuildUnderChurn) {
  for (const auto& c : kMatrix) {
    SCOPED_TRACE(std::to_string(c.shards) + " shards, storage " +
                 std::to_string(static_cast<int>(c.storage)));
    IndexOptions options;
    options.storage = c.storage;
    Corpus corpus = MakeCorpus(kBaseTables, kDim, 70 + c.shards);
    ServerDriver driver(corpus, kDim, c.shards, options);
    RunChurnScript(&driver, corpus, c.shards, options,
                   200 + c.shards * 10 + static_cast<uint64_t>(c.storage));
  }
}

TEST(ChurnPropertyTest, DistributedLakeMatchesRebuildUnderChurn) {
  for (const auto& c : kMatrix) {
    SCOPED_TRACE(std::to_string(c.shards) + " shards, storage " +
                 std::to_string(static_cast<int>(c.storage)));
    IndexOptions options;
    options.storage = c.storage;
    Corpus corpus = MakeCorpus(kBaseTables, kDim, 80 + c.shards);
    DistributedDriver driver(corpus, kDim, c.shards, options);
    RunChurnScript(&driver, corpus, c.shards, options,
                   300 + c.shards * 10 + static_cast<uint64_t>(c.storage));
  }
}

TEST(ChurnPropertyTest, ConcurrentQueriesDuringPooledCompactionStayClean) {
  // Queries race compactions that rebuild on a real ThreadPool. Every
  // result must be internally consistent (no dead ids, no duplicates) and
  // the final state must hit exact parity. Run under ASan/UBSan and
  // until-fail in CI — this is the race net.
  const size_t shards = 4;
  IndexOptions options;
  Corpus corpus = MakeCorpus(2 * kBaseTables, kDim, 90);
  ShardedLakeIndex index = BuildSharded(corpus, kDim, shards, options);
  index.Seal();
  ThreadPool pool(3);

  Model model;
  for (size_t t = 0; t < corpus.tables.size(); ++t) {
    model.Add(corpus.ids[t], corpus.tables[t]);
  }
  std::atomic<bool> stop{false};
  std::atomic<size_t> queries_run{0};
  std::thread querier([&] {
    Rng qrng(91);
    while (!stop.load()) {
      const auto q = RandomVec(&qrng, kDim);
      const auto ranked = index.QueryJoinable(q, kK);
      std::vector<std::string> sorted = ranked;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end())
          << "duplicate id in a concurrent result";
      queries_run.fetch_add(1);
    }
  });

  Rng rng(92);
  size_t next_table = corpus.tables.size();
  for (size_t round = 0; round < 6; ++round) {
    for (size_t op = 0; op < 6; ++op) {
      if (rng.Bernoulli(0.6)) {
        const std::string id = "live_" + std::to_string(next_table++);
        std::vector<std::vector<float>> cols = {RandomVec(&rng, kDim)};
        index.AddTable(id, cols);
        model.Add(id, std::move(cols));
      } else {
        const auto live = model.LiveIds();
        const std::string id =
            live[rng.Uniform(static_cast<uint32_t>(live.size()))];
        ASSERT_TRUE(index.RemoveTable(id).ok());
        ASSERT_TRUE(model.Remove(id));
      }
    }
    ASSERT_TRUE(index.Compact(/*hnsw_rebuild_threshold=*/0.0, &pool).ok());
    // On a single hardware thread the mutator can lap the querier without
    // it ever being scheduled; insist on real interleaving each round.
    const size_t target = queries_run.load() + 1;
    while (queries_run.load() < target) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  }
  stop.store(true);
  querier.join();
  EXPECT_GT(queries_run.load(), 0u);

  ShardedLakeIndex gold = model.Rebuild(kDim, shards, options);
  for (const auto& q : corpus.join_queries) {
    EXPECT_EQ(index.QueryJoinable(q, kK), gold.QueryJoinable(q, kK));
  }
}

}  // namespace
}  // namespace tsfm::search
