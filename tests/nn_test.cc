#include <gtest/gtest.h>

#include <cstdio>

#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/tensor.h"
#include "nn/transformer.h"

namespace tsfm::nn {
namespace {

// ----------------------------------------------------------------- Tensor

TEST(TensorTest, ConstructAndAccess) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.at(0, 1) = 2.0f;
  EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(TensorTest, Arithmetic) {
  Tensor a(1, 3, 2.0f);
  Tensor b(1, 3, 3.0f);
  a.Accumulate(b);
  EXPECT_FLOAT_EQ(a[0], 5.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a.Sum(), 30.0f);
  EXPECT_FLOAT_EQ(a.Mean(), 10.0f);
  a.Fill(0.0f);
  EXPECT_FLOAT_EQ(a.Norm(), 0.0f);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor(3, 4).ShapeString(), "[3x4]");
}

// --------------------------------------------------------------- Autograd

TEST(AutogradTest, BackwardThroughSharedNode) {
  // y = (x + x) summed: dy/dx = 2 everywhere.
  Var x = MakeLeaf(Tensor(2, 2, 1.0f), true);
  Var loss = SumAll(Add(x, x));
  Backward(loss);
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x->grad()[i], 2.0f);
}

TEST(AutogradTest, GradientsAccumulateAcrossBackwards) {
  Var x = MakeLeaf(Tensor(1, 1, 3.0f), true);
  Backward(SumAll(Scale(x, 2.0f)));
  Backward(SumAll(Scale(x, 2.0f)));
  EXPECT_FLOAT_EQ(x->grad()[0], 4.0f);
  x->ZeroGrad();
  EXPECT_FLOAT_EQ(x->grad()[0], 0.0f);
}

TEST(AutogradTest, NoGradLeafGetsNoGradient) {
  Var x = MakeLeaf(Tensor(1, 2, 1.0f), false);
  Var y = MakeLeaf(Tensor(1, 2, 2.0f), true);
  Var loss = SumAll(Mul(x, y));
  EXPECT_TRUE(loss->requires_grad());
  Backward(loss);
  EXPECT_FLOAT_EQ(y->grad()[0], 1.0f);
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Var x = MakeLeaf(Tensor(1, 1, 1.0f), true);
  Var h = x;
  for (int i = 0; i < 5000; ++i) h = Scale(h, 1.0f);
  Backward(SumAll(h));
  EXPECT_FLOAT_EQ(x->grad()[0], 1.0f);
}

// ---------------------------------------------------------------- Modules

TEST(LinearTest, ForwardShapeAndParams) {
  Rng rng(1);
  Linear lin(4, 3, &rng);
  Var x = MakeLeaf(Tensor(2, 4, 0.5f), false);
  Var y = lin.Forward(x);
  EXPECT_EQ(y->value().rows(), 2u);
  EXPECT_EQ(y->value().cols(), 3u);
  EXPECT_EQ(lin.Params("lin").size(), 2u);
  EXPECT_EQ(lin.NumParams(), 4u * 3u + 3u);
}

TEST(EmbeddingTest, LookupRows) {
  Rng rng(2);
  Embedding emb(10, 4, &rng);
  Var out = emb.Forward({1, 1, 7});
  EXPECT_EQ(out->value().rows(), 3u);
  // Same id -> identical rows.
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out->value().at(0, j), out->value().at(1, j));
  }
}

TEST(AttentionTest, OutputShapePreserved) {
  Rng rng(3);
  MultiHeadAttention attn(8, 2, 0.0f, &rng);
  Var x = MakeLeaf(Tensor(5, 8, 0.1f), false);
  Var y = attn.Forward(x, /*training=*/false, &rng);
  EXPECT_EQ(y->value().rows(), 5u);
  EXPECT_EQ(y->value().cols(), 8u);
}

TEST(TransformerTest, StackRunsAndCollectsParams) {
  Rng rng(4);
  TransformerConfig config;
  config.hidden = 8;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_dim = 16;
  config.dropout = 0.0f;
  TransformerEncoder enc(config, &rng);
  Var x = MakeLeaf(Tensor(4, 8, 0.2f), false);
  Var y = enc.Forward(x, false, &rng);
  EXPECT_EQ(y->value().rows(), 4u);
  EXPECT_EQ(y->value().cols(), 8u);
  // 2 layers x (4 linears x2 + 2 norms x2 + 2 ffn x2) parameters present.
  EXPECT_GT(enc.Params("enc").size(), 20u);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(5);
  Var x = MakeLeaf(Tensor(2, 2, 1.0f), false);
  Var y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_EQ(x.get(), y.get());
}

TEST(DropoutTest, TrainingScalesSurvivors) {
  Rng rng(6);
  Var x = MakeLeaf(Tensor(1, 1000, 1.0f), false);
  Var y = Dropout(x, 0.25f, /*training=*/true, &rng);
  // Inverted dropout keeps expectation ~1.
  EXPECT_NEAR(y->value().Mean(), 1.0f, 0.15f);
  // Survivors are scaled by 1/(1-p).
  for (size_t i = 0; i < y->value().size(); ++i) {
    float v = y->value()[i];
    EXPECT_TRUE(v == 0.0f || std::abs(v - 1.0f / 0.75f) < 1e-5);
  }
}

// --------------------------------------------------------------- Training

TEST(AdamWTest, FitsLinearRegression) {
  Rng rng(7);
  // Ground truth: y = 2x - 1.
  Linear model(1, 1, &rng);
  AdamW::Options opt;
  opt.lr = 0.05f;
  opt.weight_decay = 0.0f;
  AdamW optimizer(model.Params("m"), opt);

  for (int step = 0; step < 300; ++step) {
    float xv = static_cast<float>(rng.UniformDouble(-1, 1));
    Var x = MakeLeaf(Tensor(1, 1, xv), false);
    Var pred = model.Forward(x);
    Var loss = MseLoss(pred, {2.0f * xv - 1.0f});
    optimizer.ZeroGrad();
    Backward(loss);
    optimizer.Step();
  }
  EXPECT_NEAR(model.weight()->value()[0], 2.0f, 0.1f);
  EXPECT_NEAR(model.bias()->value()[0], -1.0f, 0.1f);
}

TEST(AdamWTest, GradientClippingBoundsStep) {
  Rng rng(8);
  Linear model(1, 1, &rng);
  const float w0 = model.weight()->value()[0];
  AdamW::Options opt;
  opt.lr = 0.01f;
  opt.clip_norm = 1.0f;
  AdamW optimizer(model.Params("m"), opt);
  // Enormous gradient.
  model.weight()->grad()[0] = 1e8f;
  optimizer.Step();
  EXPECT_LT(std::abs(model.weight()->value()[0] - w0), 0.1f);
}

TEST(ScheduleTest, WarmupThenDecay) {
  LinearWarmupSchedule sched(1.0f, 10, 110);
  EXPECT_LT(sched.LrAt(0), 0.2f);
  EXPECT_FLOAT_EQ(sched.LrAt(9), 1.0f);
  EXPECT_GT(sched.LrAt(10), sched.LrAt(100));
  EXPECT_NEAR(sched.LrAt(1000), 0.0f, 1e-6);
}

TEST(TransformerTest, OverfitsTinyClassification) {
  // Two "token sequences" must be classified by their first token.
  Rng rng(9);
  TransformerConfig config;
  config.hidden = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 16;
  config.dropout = 0.0f;
  Embedding emb(4, 8, &rng);
  TransformerEncoder enc(config, &rng);
  Linear head(8, 2, &rng);

  std::vector<NamedParam> params = emb.Params("emb");
  auto p2 = enc.Params("enc");
  auto p3 = head.Params("head");
  params.insert(params.end(), p2.begin(), p2.end());
  params.insert(params.end(), p3.begin(), p3.end());
  AdamW::Options opt;
  opt.lr = 0.01f;
  AdamW optimizer(params, opt);

  auto loss_of = [&](const std::vector<int>& ids, int label, bool backward) {
    Var h = enc.Forward(emb.Forward(ids), false, &rng);
    Var logits = head.Forward(SelectRow(h, 0));
    Var loss = CrossEntropyLoss(logits, {label});
    if (backward) Backward(loss);
    return loss->value()[0];
  };

  for (int step = 0; step < 150; ++step) {
    optimizer.ZeroGrad();
    loss_of({1, 2, 3}, 0, true);
    loss_of({2, 2, 3}, 1, true);
    optimizer.Step();
  }
  EXPECT_LT(loss_of({1, 2, 3}, 0, false), 0.1f);
  EXPECT_LT(loss_of({2, 2, 3}, 1, false), 0.1f);
}

// ------------------------------------------------------------ Serialization

TEST(SerializeTest, CheckpointRoundTrip) {
  Rng rng(10);
  Linear a(3, 2, &rng);
  std::string path = testing::TempDir() + "/tsfm_ckpt_test.bin";
  ASSERT_TRUE(SaveCheckpoint(a.Params("m"), path).ok());

  Rng rng2(999);
  Linear b(3, 2, &rng2);
  ASSERT_TRUE(LoadCheckpoint(b.Params("m"), path).ok());
  for (size_t i = 0; i < a.weight()->value().size(); ++i) {
    EXPECT_FLOAT_EQ(a.weight()->value()[i], b.weight()->value()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(11);
  Linear a(3, 2, &rng);
  std::string path = testing::TempDir() + "/tsfm_ckpt_bad.bin";
  ASSERT_TRUE(SaveCheckpoint(a.Params("m"), path).ok());
  Linear c(4, 2, &rng);
  EXPECT_FALSE(LoadCheckpoint(c.Params("m"), path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  Rng rng(12);
  Linear a(2, 2, &rng);
  auto status = LoadCheckpoint(a.Params("m"), "/nonexistent/ckpt.bin");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tsfm::nn
